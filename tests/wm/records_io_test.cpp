#include "wm/records_io.h"

#include <gtest/gtest.h>

#include "dfglib/synth.h"
#include "sched/list_sched.h"

namespace lwm::wm {
namespace {

crypto::Signature alice() { return {"alice", "alice-design-key-2001"}; }

RecordArchive make_archive() {
  cdfg::Graph g = lwm::dfglib::make_dsp_design("rio", 14, 160, 101);
  const sched::Schedule s = sched::list_schedule(g);
  const auto lifetimes = regbind::compute_lifetimes(g, s);

  RecordArchive archive;
  SchedWmOptions sopts;
  sopts.domain.tau = 5;
  sopts.k = 3;
  sopts.epsilon = 0.3;
  for (const auto& m : embed_local_watermarks(g, alice(), 2, sopts)) {
    archive.sched.push_back(SchedRecord::from(m, g));
  }
  RegWmOptions ropts;
  ropts.domain.tau = 5;
  ropts.m = 3;
  for (const auto& m : plan_reg_watermarks(g, lifetimes, alice(), 2, ropts)) {
    archive.reg.push_back(RegRecord::from(m, g));
  }
  return archive;
}

TEST(RecordsIoTest, RoundTripIsExact) {
  const RecordArchive a = make_archive();
  ASSERT_FALSE(a.sched.empty());
  ASSERT_FALSE(a.reg.empty());
  const std::string text = to_text(a);
  const RecordArchive b = records_from_text(text);

  ASSERT_EQ(b.sched.size(), a.sched.size());
  for (std::size_t i = 0; i < a.sched.size(); ++i) {
    EXPECT_EQ(b.sched[i].domain.tau, a.sched[i].domain.tau);
    EXPECT_EQ(b.sched[i].domain.keep_num, a.sched[i].domain.keep_num);
    EXPECT_EQ(b.sched[i].domain.keep_den, a.sched[i].domain.keep_den);
    EXPECT_EQ(b.sched[i].positions, a.sched[i].positions);
    EXPECT_EQ(b.sched[i].subtree_ops, a.sched[i].subtree_ops);
  }
  ASSERT_EQ(b.reg.size(), a.reg.size());
  for (std::size_t i = 0; i < a.reg.size(); ++i) {
    EXPECT_EQ(b.reg[i].m, a.reg[i].m);
    EXPECT_EQ(b.reg[i].positions, a.reg[i].positions);
    EXPECT_EQ(b.reg[i].subtree_ops, a.reg[i].subtree_ops);
  }
  EXPECT_EQ(to_text(b), text) << "serialization is a fixed point";
}

TEST(RecordsIoTest, ReloadedRecordsStillDetect) {
  cdfg::Graph g = lwm::dfglib::make_dsp_design("rio2", 14, 160, 102);
  SchedWmOptions opts;
  opts.domain.tau = 5;
  opts.k = 3;
  opts.min_edges = 2;
  opts.epsilon = 0.3;
  const auto marks = embed_local_watermarks(g, alice(), 2, opts);
  ASSERT_FALSE(marks.empty());
  RecordArchive archive;
  for (const auto& m : marks) archive.sched.push_back(SchedRecord::from(m, g));
  const sched::Schedule s = sched::list_schedule(g);
  g.strip_temporal_edges();

  const RecordArchive reloaded = records_from_text(to_text(archive));
  for (const SchedRecord& rec : reloaded.sched) {
    EXPECT_TRUE(detect_sched_watermark(g, s, alice(), rec).detected());
  }
}

TEST(RecordsIoTest, EmptyArchiveRoundTrips) {
  const RecordArchive empty;
  const RecordArchive back = records_from_text(to_text(empty));
  EXPECT_TRUE(back.sched.empty());
  EXPECT_TRUE(back.reg.empty());
}

TEST(RecordsIoTest, CommentsIgnored) {
  const RecordArchive a = records_from_text(
      "lwm-records v1\n"
      "# archive for project X\n"
      "sched tau=5 keep=1/2 pairs=1\n"
      "pos 2 4\n"
      "ops 4 4 6 1\n");
  ASSERT_EQ(a.sched.size(), 1u);
  EXPECT_EQ(a.sched[0].domain.tau, 5);
  EXPECT_EQ(a.sched[0].positions[0], (std::pair<int, int>{2, 4}));
  EXPECT_EQ(a.sched[0].subtree_ops.size(), 4u);
}

TEST(RecordsIoTest, MalformedInputRejectedWithLineNumbers) {
  EXPECT_THROW((void)records_from_text(""), std::runtime_error);
  EXPECT_THROW((void)records_from_text("wrong header\n"), std::runtime_error);
  // pos before any record.
  EXPECT_THROW((void)records_from_text("lwm-records v1\npos 1 2\n"),
               std::runtime_error);
  // pair-count mismatch.
  EXPECT_THROW((void)records_from_text("lwm-records v1\n"
                                       "sched tau=5 keep=1/2 pairs=2\n"
                                       "pos 1 2\n"
                                       "ops 1 2 3\n"),
               std::runtime_error);
  // missing ops.
  EXPECT_THROW((void)records_from_text("lwm-records v1\n"
                                       "sched tau=5 keep=1/2 pairs=0\n"),
               std::runtime_error);
  // reg without m.
  EXPECT_THROW((void)records_from_text("lwm-records v1\n"
                                       "reg tau=5 keep=1/2 pairs=0\nops 1\n"),
               std::runtime_error);
  // garbage numbers.
  try {
    (void)records_from_text("lwm-records v1\nsched tau=x keep=1/2 pairs=0\n");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace lwm::wm
