// graph_soa.h — structure-of-arrays snapshot of a CDFG for hot loops.
//
// cdfg::Graph stores adjacency as std::vector<std::vector<EdgeId>> and
// per-node payloads behind NodeId handles — the right shape for
// mutation, but a pointer chase per edge on the traversal-heavy paths
// (timing-window propagation, force-directed refill fan-out).  GraphSoA
// freezes a filtered view of a graph into flat, cache-dense arrays:
//
//   * live nodes renumbered to dense 32-bit indices [0, size()) in
//     ascending NodeId order;
//   * CSR fan-in / fan-out: one offsets array plus one arena of dense
//     neighbor indices per direction, with each node's edge insertion
//     order preserved (the deterministic-ordering contract the
//     watermark domain-identification step relies on) and edges not
//     accepted by the filter dropped at build time;
//   * contiguous per-node attribute arrays: delay, unit class,
//     executability.
//
// Parallel edges contribute one CSR entry each, exactly like the
// EdgeId-based adjacency they mirror.  The view is a snapshot: graph
// mutations after construction are not reflected.  The round trip
// against the source graph is property-checked by
// tests/cdfg/graph_soa_test.cpp on every dfglib kernel and the fuzz
// corpus CDFGs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cdfg/analysis.h"
#include "cdfg/graph.h"

namespace lwm::cdfg {

class GraphSoA {
 public:
  /// Sentinel dense index for dead / out-of-range NodeIds.
  static constexpr std::uint32_t kInvalid = 0xFFFF'FFFFu;

  explicit GraphSoA(const Graph& g, EdgeFilter filter = EdgeFilter::all());

  /// The 32-bit CSR layout caps what one snapshot can hold: fewer than
  /// kInvalid nodes (the sentinel must stay unused) and at most
  /// 0xFFFFFFFF accepted edge entries per direction (the offsets array
  /// is uint32).  Throws std::length_error naming the exceeded limit —
  /// a mega-design past these bounds must fail loudly, never truncate
  /// indices.  Exposed for direct unit testing; graphs at the limit are
  /// too large to construct in a test.
  static void check_csr_limits(std::size_t nodes, std::uint64_t edge_entries);

  [[nodiscard]] const EdgeFilter& filter() const noexcept { return filter_; }

  /// Number of live nodes frozen into the view.
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(node_of_.size());
  }

  /// Dense index -> source-graph NodeId (ascending in dense order).
  [[nodiscard]] NodeId node_of(std::uint32_t dense) const noexcept {
    return node_of_[dense];
  }

  /// Source-graph NodeId -> dense index; kInvalid if the node was dead
  /// (or out of range) at snapshot time.
  [[nodiscard]] std::uint32_t dense_of(NodeId n) const noexcept {
    return n.value < dense_of_.size() ? dense_of_[n.value] : kInvalid;
  }

  /// Accepted fan-in / fan-out of `dense`, as dense indices, in the
  /// source node's edge insertion order.
  [[nodiscard]] std::span<const std::uint32_t> fanin(std::uint32_t dense) const noexcept {
    return {fanin_.data() + fanin_off_[dense],
            fanin_off_[dense + 1] - fanin_off_[dense]};
  }
  [[nodiscard]] std::span<const std::uint32_t> fanout(std::uint32_t dense) const noexcept {
    return {fanout_.data() + fanout_off_[dense],
            fanout_off_[dense + 1] - fanout_off_[dense]};
  }

  [[nodiscard]] int delay(std::uint32_t dense) const noexcept {
    return delay_[dense];
  }
  /// Lower delay bound d_min (== delay() on exact-interval graphs).
  [[nodiscard]] int delay_min(std::uint32_t dense) const noexcept {
    return delay_min_[dense];
  }
  /// True if any frozen node carries a non-degenerate delay interval.
  [[nodiscard]] bool bounded_delays() const noexcept { return bounded_; }
  [[nodiscard]] UnitClass unit_class(std::uint32_t dense) const noexcept {
    return static_cast<UnitClass>(cls_[dense]);
  }
  [[nodiscard]] bool executable(std::uint32_t dense) const noexcept {
    return exec_[dense] != 0;
  }

  /// Raw attribute streams (indexed by dense id) for kernel code.
  [[nodiscard]] std::span<const std::int32_t> delays() const noexcept {
    return delay_;
  }
  [[nodiscard]] std::span<const std::int32_t> delay_mins() const noexcept {
    return delay_min_;
  }
  [[nodiscard]] std::span<const std::uint8_t> classes() const noexcept {
    return cls_;
  }
  [[nodiscard]] std::span<const std::uint8_t> executables() const noexcept {
    return exec_;
  }

  /// Total accepted edge entries in the fan-in arena (== fan-out arena).
  [[nodiscard]] std::size_t edge_entries() const noexcept {
    return fanin_.size();
  }

 private:
  EdgeFilter filter_;
  std::vector<NodeId> node_of_;          ///< dense -> NodeId
  std::vector<std::uint32_t> dense_of_;  ///< NodeId::value -> dense
  std::vector<std::uint32_t> fanin_off_, fanout_off_;  ///< size() + 1 each
  std::vector<std::uint32_t> fanin_, fanout_;          ///< CSR arenas
  std::vector<std::int32_t> delay_;
  std::vector<std::int32_t> delay_min_;
  std::vector<std::uint8_t> cls_;
  std::vector<std::uint8_t> exec_;
  bool bounded_ = false;
};

}  // namespace lwm::cdfg
