# Empty dependencies file for bench_embed_detect.
# This may be replaced when dependencies are built.
