// force_directed.h — time-constrained force-directed scheduling.
//
// Paulin & Knight's FDS (IEEE TCAD 1989) — the heuristic scheduler the
// paper cites as the representative approach [14].  Given a latency
// bound, FDS places one operation per iteration at the control step with
// the lowest "force", balancing the expected concurrency of each
// functional-unit class and thereby minimizing the resource (module)
// count.  It honors temporal watermark edges like any other precedence,
// which is exactly how the watermarking protocol stays transparent to the
// synthesis tool.
//
// Two implementations share this interface:
//   * force_directed_schedule() — the incremental engine: windows come
//     from a cdfg::TimingCache (only the pinned cone re-relaxed per
//     iteration) and per-node force vectors are cached across iterations,
//     recomputed — optionally in parallel — only when the last placement
//     touched the node's window, a neighbor's window, or the distribution
//     graph inside the steps the node reads.  Bit-identical to the
//     reference at every thread count.
//   * force_directed_schedule_reference() — the original from-scratch
//     O(iterations x nodes x steps) loop, kept as the equivalence oracle
//     for tests and the baseline for benchmarks.
#pragma once

#include "cdfg/analysis.h"
#include "cdfg/graph.h"
#include "sched/schedule.h"

namespace lwm::exec {
class ThreadPool;
}  // namespace lwm::exec

namespace lwm::sched {

struct FdsOptions {
  /// Latency bound (control steps). -1 means "critical path".
  int latency = -1;
  cdfg::EdgeFilter filter = cdfg::EdgeFilter::all();
  /// Optional pool for the force-recompute fan-out; null runs serially.
  /// The schedule is bit-identical at every concurrency.
  exec::ThreadPool* pool = nullptr;
};

/// Schedules every executable node of `g` within the latency bound.
/// Throws std::invalid_argument if the bound is below the critical path.
[[nodiscard]] Schedule force_directed_schedule(const cdfg::Graph& g,
                                               const FdsOptions& opts = {});

/// The original from-scratch implementation (serial; ignores opts.pool).
/// Exists as the oracle: force_directed_schedule() must match it exactly.
[[nodiscard]] Schedule force_directed_schedule_reference(
    const cdfg::Graph& g, const FdsOptions& opts = {});

}  // namespace lwm::sched
