#include "cdfg/normalize.h"

#include <gtest/gtest.h>

#include "cdfg/analysis.h"
#include "cdfg/builder.h"
#include "cdfg/validate.h"
#include "dfglib/iir4.h"

namespace lwm::cdfg {
namespace {

TEST(NormalizeTest, CollapsesSingleUnitOp) {
  Builder b("one_unit");
  const NodeId in = b.input("in");
  const NodeId a = b.op(OpKind::kAdd, "a", {in, in});
  const NodeId u = b.op(OpKind::kUnit, "u", {a});
  const NodeId c = b.op(OpKind::kAdd, "c", {u, in});
  b.output("o", c);
  Graph g = std::move(b).build();

  EXPECT_EQ(normalize_unit_ops(g), 1);
  EXPECT_FALSE(g.is_live(u));
  EXPECT_TRUE(g.has_edge(a, c, EdgeKind::kData));
  EXPECT_TRUE(validate(g).empty());
}

TEST(NormalizeTest, CollapsesChainsToFixedPoint) {
  Builder b("unit_chain");
  const NodeId in = b.input("in");
  const NodeId a = b.op(OpKind::kAdd, "a", {in, in});
  NodeId prev = a;
  for (int i = 0; i < 4; ++i) {
    prev = b.op(OpKind::kUnit, "u" + std::to_string(i), {prev});
  }
  const NodeId c = b.op(OpKind::kAdd, "c", {prev, in});
  b.output("o", c);
  Graph g = std::move(b).build();

  EXPECT_EQ(normalize_unit_ops(g), 4);
  EXPECT_TRUE(g.has_edge(a, c, EdgeKind::kData));
  EXPECT_EQ(g.operation_count(), 2u);
}

TEST(NormalizeTest, MultiInputUnitOpKept) {
  // A unit op combining two values is real computation; normalization
  // must not touch it.
  Builder b("real_unit");
  const NodeId in = b.input("in");
  const NodeId a = b.op(OpKind::kAdd, "a", {in, in});
  const NodeId u = b.op(OpKind::kUnit, "u", {a, in});
  b.output("o", u);
  Graph g = std::move(b).build();
  EXPECT_EQ(normalize_unit_ops(g), 0);
  EXPECT_TRUE(g.is_live(u));
}

TEST(NormalizeTest, PreservesConsumerMultiplicity) {
  Builder b("fanout");
  const NodeId in = b.input("in");
  const NodeId a = b.op(OpKind::kAdd, "a", {in, in});
  const NodeId u = b.op(OpKind::kUnit, "u", {a});
  const NodeId c1 = b.op(OpKind::kMul, "c1", {u});
  const NodeId c2 = b.op(OpKind::kMul, "c2", {u, u});  // reads it twice
  b.output("o1", c1);
  b.output("o2", c2);
  Graph g = std::move(b).build();

  EXPECT_EQ(normalize_unit_ops(g), 1);
  EXPECT_EQ(g.fanin(c1).size(), 1u);
  EXPECT_EQ(g.fanin(c2).size(), 2u);
  for (EdgeId e : g.fanin(c2)) {
    EXPECT_EQ(g.edge(e).src, a);
  }
}

TEST(NormalizeTest, IdempotentOnCleanGraphs) {
  Graph g = lwm::dfglib::iir4_parallel();
  const std::size_t nodes = g.node_count();
  EXPECT_EQ(normalize_unit_ops(g), 0);
  EXPECT_EQ(g.node_count(), nodes);
}

TEST(NormalizeTest, PreservesCriticalPathModuloUnits) {
  Builder b("cp");
  const NodeId in = b.input("in");
  const NodeId a = b.op(OpKind::kAdd, "a", {in, in});
  const NodeId u = b.op(OpKind::kUnit, "u", {a});
  const NodeId c = b.op(OpKind::kAdd, "c", {u});
  b.output("o", c);
  Graph g = std::move(b).build();
  EXPECT_EQ(critical_path_length(g), 3);
  (void)normalize_unit_ops(g);
  EXPECT_EQ(critical_path_length(g), 2);
}

}  // namespace
}  // namespace lwm::cdfg
