#include "crypto/signature.h"

#include <stdexcept>
#include <vector>

namespace lwm::crypto {

namespace {

// FNV-1a, used only for the loggable fingerprint (not for keying).
std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Signature::Signature(std::string owner, std::string key_material)
    : owner_(std::move(owner)), key_(std::move(key_material)) {
  if (key_.empty()) {
    throw std::invalid_argument("Signature: key material must be non-empty");
  }
  fingerprint_ = fnv1a(key_);
}

Signature Signature::derive(std::string_view label) const {
  // Child key = parent key || 0x01 || label; the 0x01 byte keeps the
  // derivation domain disjoint from stream()'s 0x00-separated tags.
  std::string child_key = key_;
  child_key.push_back('\x01');
  child_key.append(label);
  return Signature(owner_ + "/" + std::string(label), std::move(child_key));
}

Bitstream Signature::stream(std::string_view purpose_tag) const {
  // RC4 key = signature bytes || 0x00 || tag bytes, truncated to the
  // cipher's 256-byte key limit.  The 0x00 separator keeps ("ab","c")
  // and ("a","bc") distinct.
  std::vector<std::uint8_t> key;
  key.reserve(key_.size() + 1 + purpose_tag.size());
  for (const char c : key_) key.push_back(static_cast<std::uint8_t>(c));
  key.push_back(0);
  for (const char c : purpose_tag) key.push_back(static_cast<std::uint8_t>(c));
  if (key.size() > 256) key.resize(256);
  return Bitstream(Rc4(key));
}

}  // namespace lwm::crypto
