#include "serve/design_store.h"

#include <exception>
#include <utility>
#include <vector>

#include "cdfg/serialize.h"
#include "obs/obs.h"
#include "sched/schedule_io.h"

namespace lwm::serve {

std::uint64_t content_hash(std::string_view bytes) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a 64 offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;  // FNV prime
  }
  return h;
}

StoredDesign::StoredDesign(std::uint64_t id_, std::size_t bytes, cdfg::Graph g)
    : id(id_),
      text_bytes(bytes),
      graph(std::move(g)),
      timing(graph, -1, cdfg::EdgeFilter::specification()),
      plan(wm::PlanContext::build(graph, wm::SchedWmOptions{})) {}

DesignStore::DesignStore(DesignStoreOptions opts) : opts_(opts) {}

io::ParseResult<std::shared_ptr<const StoredDesign>> DesignStore::load_design(
    std::string_view text, std::string_view source_name) {
  const std::uint64_t id = content_hash(text);
  DesignShard& shard = designs_[shard_of(id)];
  {
    std::shared_lock lock(shard.mutex);
    const auto it = shard.map.find(id);
    if (it != shard.map.end()) {
      it->second->last_used.store(tick(), std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      LWM_COUNT("serve/store_hits", 1);
      return it->second->design;
    }
  }

  // Miss: parse and build every derived structure outside any lock.
  io::ParseResult<cdfg::Graph> parsed = cdfg::parse_cdfg(text, source_name);
  if (!parsed.ok()) return parsed.diag();
  std::shared_ptr<const StoredDesign> design;
  try {
    design = std::make_shared<const StoredDesign>(id, text.size(),
                                                  std::move(parsed).value());
  } catch (const std::exception& e) {
    // Structural failures the per-line parser cannot see (e.g. a cyclic
    // precedence relation breaking the topological sort) surface here.
    return io::Diagnostic{std::string(source_name), 0, 0, e.what()};
  }

  {
    std::unique_lock lock(shard.mutex);
    const auto [it, inserted] = shard.map.try_emplace(id);
    if (!inserted) {
      // Lost the insert race: first wins, our build is discarded.
      it->second->last_used.store(tick(), std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      LWM_COUNT("serve/store_hits", 1);
      return it->second->design;
    }
    it->second = std::make_shared<DesignEntry>();
    it->second->design = design;
    it->second->last_used.store(tick(), std::memory_order_relaxed);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  LWM_COUNT("serve/store_misses", 1);
  resident_bytes_.fetch_add(text.size(), std::memory_order_relaxed);
  enforce_budget(id);
  return design;
}

std::shared_ptr<const StoredDesign> DesignStore::find_design(
    std::uint64_t id) const {
  const DesignShard& shard = designs_[shard_of(id)];
  std::shared_lock lock(shard.mutex);
  const auto it = shard.map.find(id);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    LWM_COUNT("serve/store_misses", 1);
    return nullptr;
  }
  it->second->last_used.store(tick(), std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  LWM_COUNT("serve/store_hits", 1);
  return it->second->design;
}

io::ParseResult<std::shared_ptr<const StoredSchedule>>
DesignStore::load_schedule(const std::shared_ptr<const StoredDesign>& design,
                           std::string_view text,
                           std::string_view source_name) {
  const std::uint64_t sched_id = content_hash(text);
  const std::uint64_t key = schedule_key(design->id, sched_id);
  ScheduleShard& shard = schedules_[shard_of(key)];
  {
    std::shared_lock lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second->last_used.store(tick(), std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      LWM_COUNT("serve/store_hits", 1);
      return it->second->schedule;
    }
  }

  io::ParseResult<sched::Schedule> parsed =
      sched::parse_schedule(design->graph, text, source_name);
  if (!parsed.ok()) return parsed.diag();
  auto stored = std::make_shared<const StoredSchedule>(StoredSchedule{
      sched_id, text.size(), design, std::move(parsed).value()});

  {
    std::unique_lock lock(shard.mutex);
    const auto [it, inserted] = shard.map.try_emplace(key);
    if (!inserted) {
      it->second->last_used.store(tick(), std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      LWM_COUNT("serve/store_hits", 1);
      return it->second->schedule;
    }
    it->second = std::make_shared<ScheduleEntry>();
    it->second->schedule = stored;
    it->second->last_used.store(tick(), std::memory_order_relaxed);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  LWM_COUNT("serve/store_misses", 1);
  resident_bytes_.fetch_add(text.size(), std::memory_order_relaxed);
  enforce_budget(design->id);
  return stored;
}

std::shared_ptr<const StoredSchedule> DesignStore::find_schedule(
    std::uint64_t design_id, std::uint64_t sched_id) const {
  const std::uint64_t key = schedule_key(design_id, sched_id);
  const ScheduleShard& shard = schedules_[shard_of(key)];
  std::shared_lock lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    LWM_COUNT("serve/store_misses", 1);
    return nullptr;
  }
  it->second->last_used.store(tick(), std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  LWM_COUNT("serve/store_hits", 1);
  return it->second->schedule;
}

bool DesignStore::evict_design_locked_free(std::uint64_t id) {
  std::size_t freed = 0;
  bool existed = false;
  std::uint64_t removed = 0;
  {
    DesignShard& shard = designs_[shard_of(id)];
    std::unique_lock lock(shard.mutex);
    const auto it = shard.map.find(id);
    if (it != shard.map.end()) {
      freed += it->second->design->text_bytes;
      shard.map.erase(it);
      existed = true;
      ++removed;
    }
  }
  if (existed) {
    // Drop every schedule parsed against the design: their graph is gone
    // from the store, so their ids must stop resolving too (in-flight
    // holders keep both alive through their shared_ptrs).
    for (ScheduleShard& shard : schedules_) {
      std::unique_lock lock(shard.mutex);
      for (auto it = shard.map.begin(); it != shard.map.end();) {
        if (it->second->schedule->design->id == id) {
          freed += it->second->schedule->text_bytes;
          it = shard.map.erase(it);
          ++removed;
        } else {
          ++it;
        }
      }
    }
  }
  if (freed > 0) resident_bytes_.fetch_sub(freed, std::memory_order_relaxed);
  if (removed > 0) {
    evictions_.fetch_add(removed, std::memory_order_relaxed);
    LWM_COUNT("serve/store_evictions", removed);
  }
  return existed;
}

bool DesignStore::evict_design(std::uint64_t id) {
  std::lock_guard guard(evict_mutex_);
  return evict_design_locked_free(id);
}

void DesignStore::enforce_budget(std::uint64_t keep_design_id) {
  if (resident_bytes_.load(std::memory_order_relaxed) <=
      opts_.max_resident_bytes) {
    return;
  }
  std::lock_guard guard(evict_mutex_);
  while (resident_bytes_.load(std::memory_order_relaxed) >
         opts_.max_resident_bytes) {
    // Global LRU sweep over both kinds of entries.  Eviction is rare
    // (only when the budget trips) so the scan cost is acceptable; the
    // newest design is exempt so an over-budget store still serves the
    // request that grew it.
    bool found = false;
    bool victim_is_design = false;
    std::uint64_t victim_design = 0;
    std::uint64_t victim_key = 0;
    std::size_t victim_shard = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (const DesignShard& shard : designs_) {
      std::shared_lock lock(shard.mutex);
      for (const auto& [id, entry] : shard.map) {
        if (id == keep_design_id) continue;
        const std::uint64_t used =
            entry->last_used.load(std::memory_order_relaxed);
        if (used < oldest) {
          oldest = used;
          found = true;
          victim_is_design = true;
          victim_design = id;
        }
      }
    }
    for (std::size_t s = 0; s < kShards; ++s) {
      const ScheduleShard& shard = schedules_[s];
      std::shared_lock lock(shard.mutex);
      for (const auto& [key, entry] : shard.map) {
        const std::uint64_t used =
            entry->last_used.load(std::memory_order_relaxed);
        if (used < oldest) {
          oldest = used;
          found = true;
          victim_is_design = false;
          victim_key = key;
          victim_shard = s;
        }
      }
    }
    if (!found) break;  // only the protected design remains
    if (victim_is_design) {
      evict_design_locked_free(victim_design);
    } else {
      ScheduleShard& shard = schedules_[victim_shard];
      std::unique_lock lock(shard.mutex);
      const auto it = shard.map.find(victim_key);
      if (it != shard.map.end()) {
        resident_bytes_.fetch_sub(it->second->schedule->text_bytes,
                                  std::memory_order_relaxed);
        shard.map.erase(it);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        LWM_COUNT("serve/store_evictions", 1);
      }
    }
  }
}

DesignStoreStats DesignStore::stats() const {
  DesignStoreStats s;
  for (const DesignShard& shard : designs_) {
    std::shared_lock lock(shard.mutex);
    s.designs += shard.map.size();
  }
  for (const ScheduleShard& shard : schedules_) {
    std::shared_lock lock(shard.mutex);
    s.schedules += shard.map.size();
  }
  s.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace lwm::serve
