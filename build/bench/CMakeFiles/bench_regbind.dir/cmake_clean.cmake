file(REMOVE_RECURSE
  "CMakeFiles/bench_regbind.dir/bench_regbind.cpp.o"
  "CMakeFiles/bench_regbind.dir/bench_regbind.cpp.o.d"
  "bench_regbind"
  "bench_regbind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regbind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
