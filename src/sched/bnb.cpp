#include "sched/bnb.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <climits>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "cdfg/timing_cache.h"
#include "exec/parallel.h"
#include "obs/obs.h"
#include "sched/list_sched.h"

namespace lwm::sched {

using cdfg::EdgeId;
using cdfg::Graph;
using cdfg::NodeId;

namespace {

// Everything about (graph, filter) the search needs but no search step
// mutates — built once and shared by every branch and, in bnb_min_units,
// every candidate unit vector.
struct SearchContext {
  const Graph* g = nullptr;
  int critical_path = 0;
  std::vector<NodeId> ops;                    // executable nodes, topo order
  std::vector<int> delay, tail;               // by op index
  std::vector<std::size_t> cls;               // by op index
  std::vector<std::vector<std::size_t>> succ; // by op index: dependent ops
};

SearchContext build_context(const Graph& g, cdfg::EdgeFilter filter) {
  SearchContext ctx;
  ctx.g = &g;

  const cdfg::TimingCache timing(g, -1, filter);
  ctx.critical_path = timing.critical_path();

  // Executable ops in topo order; predecessors collapsed through
  // pseudo-ops (a pseudo-op has zero delay, so its own executable
  // predecessors constrain its consumers directly).
  std::vector<std::vector<NodeId>> preds(g.node_capacity());
  std::vector<std::size_t> index_of(g.node_capacity(), 0);
  for (NodeId n : timing.topo()) {
    if (cdfg::is_executable(g.node(n).kind)) {
      index_of[n.value] = ctx.ops.size();
      ctx.ops.push_back(n);
    }
    for (EdgeId e : g.fanin(n)) {
      const cdfg::Edge& ed = g.edge(e);
      if (!filter.accepts(ed)) continue;
      if (cdfg::is_executable(g.node(ed.src).kind)) {
        preds[n.value].push_back(ed.src);
      } else {
        for (NodeId pp : preds[ed.src.value]) preds[n.value].push_back(pp);
      }
    }
  }
  const std::size_t count = ctx.ops.size();
  ctx.delay.resize(count);
  ctx.tail.resize(count);
  ctx.cls.resize(count);
  ctx.succ.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId n = ctx.ops[i];
    ctx.delay[i] = g.node(n).delay;
    // latency - alap(n) = delay(n) + longest tail after completion.
    ctx.tail[i] = timing.latency() - timing.hi(n);
    ctx.cls[i] = static_cast<std::size_t>(cdfg::unit_class(g.node(n).kind));
    for (NodeId p : preds[n.value]) ctx.succ[index_of[p.value]].push_back(i);
  }
  return ctx;
}

// Incumbent shared by every branch of one search.  The packed key orders
// (latency, branch index) lexicographically; it only ever decreases, and
// all writes happen under the mutex.
struct Incumbent {
  static constexpr int kBranchShift = 32;
  std::atomic<std::uint64_t> key;
  std::mutex mutex;
  Schedule best;

  explicit Incumbent(int bound_init)
      : key(static_cast<std::uint64_t>(bound_init) << kBranchShift) {}
};

// Shared node budget with batched draining (the enumerate.cpp idiom):
// branches count locally and settle a quantum at a time, so the atomic is
// touched rarely with generous limits but the stop still fires promptly
// with tiny ones.
struct Budget {
  std::uint64_t limit = 0;  // 0 = unlimited
  std::uint64_t quantum = 1024;
  std::atomic<std::uint64_t> used{0};
  std::atomic<bool> stop{false};

  explicit Budget(std::uint64_t node_limit) : limit(node_limit) {
    if (limit != 0) quantum = std::clamp<std::uint64_t>(limit / 8, 1, 1024);
  }
  void settle(std::uint64_t n) {
    if (n == 0) return;
    const std::uint64_t total =
        used.fetch_add(n, std::memory_order_acq_rel) + n;
    if (limit != 0 && total >= limit) {
      stop.store(true, std::memory_order_release);
    }
  }
};

struct VectorHash {
  std::size_t operator()(const std::vector<int>& v) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
    for (const int x : v) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(x));
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

// Depth-first search of one first-level branch.  Mirrors the historical
// serial searcher step for step; the only cross-branch coupling is the
// shared incumbent (read for pruning, written under its mutex) and the
// node budget.
struct BranchSearcher {
  const SearchContext& ctx;
  const ResourceSet& resources;
  Incumbent& inc;
  Budget& budget;
  std::uint64_t branch = 0;
  bool first_leaf_exit = false;
  // Memoize only the shallow levels: few search nodes live there, each
  // pruned subtree is exponentially large, and the signature cost stays
  // negligible next to the subtree it can save.  Deep levels churn
  // through millions of tiny subtrees where building a signature costs
  // more than the subtree itself.
  std::size_t memo_max_idx = 0;

  Schedule current;
  std::vector<std::vector<int>> usage{cdfg::kNumUnitClasses};
  std::vector<int> ready;  // partial ready time per op index
  std::vector<std::pair<std::size_t, int>> ready_undo;
  int prefix_end = 0;
  std::uint64_t local_nodes = 0;
  std::uint64_t total_nodes = 0;
  bool found_leaf = false;
  // Observability tallies: fields (not locals) so the increments stay
  // branch-free in the hot loop and flush as one LWM_COUNT per branch.
  std::uint64_t pruned_bound = 0;
  std::uint64_t pruned_dominance = 0;
  std::uint64_t incumbent_updates = 0;

  // Dominance memo: signature -> best prefix makespan seen.  Bounded so a
  // pathological search cannot exhaust memory; lookups still prune after
  // the cap, inserts stop.
  static constexpr std::size_t kMemoCap = 1 << 20;
  std::unordered_map<std::vector<int>, int, VectorHash> memo;
  std::vector<int> key_buf;  // reused across lookups; copied only on insert

  BranchSearcher(const SearchContext& c, const ResourceSet& res, Incumbent& i,
                 Budget& b)
      : ctx(c), resources(res), inc(i), budget(b), current(*c.g),
        ready(c.ops.size(), 0) {}

  [[nodiscard]] bool stopped() const {
    return budget.stop.load(std::memory_order_acquire);
  }

  void count_node() {
    ++local_nodes;
    ++total_nodes;
    if (local_nodes >= budget.quantum) {
      budget.settle(local_nodes);
      local_nodes = 0;
    }
  }

  void finish() { budget.settle(local_nodes); local_nodes = 0; }

  // (position, remaining ready times, usage suffix at/after the earliest
  // step any remaining op can issue).  Two search states with equal
  // signatures admit exactly the same completions, so the one entered
  // with the higher prefix makespan cannot produce a strictly better (or
  // equally good but earlier) leaf than the other.
  [[nodiscard]] bool memo_allows(std::size_t idx) {
    const std::size_t count = ctx.ops.size();
    int s_min = INT_MAX;
    for (std::size_t j = idx; j < count; ++j) s_min = std::min(s_min, ready[j]);
    key_buf.clear();
    key_buf.push_back(static_cast<int>(idx));
    for (std::size_t j = idx; j < count; ++j) key_buf.push_back(ready[j]);
    for (std::size_t c = 0; c < cdfg::kNumUnitClasses; ++c) {
      if (resources.count(static_cast<cdfg::UnitClass>(c)) < 0) continue;
      key_buf.push_back(-1);  // class separator
      const std::vector<int>& row = usage[c];
      std::size_t end = row.size();
      while (end > static_cast<std::size_t>(s_min) && row[end - 1] == 0) --end;
      for (std::size_t s = static_cast<std::size_t>(s_min); s < end; ++s) {
        key_buf.push_back(row[s]);
      }
    }
    const auto it = memo.find(key_buf);
    if (it != memo.end()) {
      if (it->second <= prefix_end) return false;
      it->second = prefix_end;
    } else if (memo.size() < kMemoCap) {
      memo.emplace(key_buf, prefix_end);
    }
    return true;
  }

  void record_leaf() {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(prefix_end) << Incumbent::kBranchShift) |
        branch;
    if (packed < inc.key.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(inc.mutex);
      if (packed < inc.key.load(std::memory_order_relaxed)) {
        inc.best = current;
        inc.key.store(packed, std::memory_order_release);
        ++incumbent_updates;
      }
    }
    found_leaf = true;
  }

  // Occupies op `idx` at step t and recurses.  Returns false when the
  // whole search should unwind (budget exhausted or first-leaf exit).
  bool descend(std::size_t idx, int t) {
    const std::size_t c = ctx.cls[idx];
    const int limit = resources.count(static_cast<cdfg::UnitClass>(c));
    const int delay = ctx.delay[idx];
    if (limit >= 0) {
      for (int d = 0; d < delay; ++d) {
        const auto step = static_cast<std::size_t>(t + d);
        if (step >= usage[c].size()) usage[c].resize(step + 1, 0);
        ++usage[c][step];
      }
    }
    current.set_start(ctx.ops[idx], t);
    const std::size_t undo_base = ready_undo.size();
    const int old_end = prefix_end;
    for (const std::size_t j : ctx.succ[idx]) {
      if (t + delay > ready[j]) {
        ready_undo.emplace_back(j, ready[j]);
        ready[j] = t + delay;
      }
    }
    prefix_end = std::max(prefix_end, t + delay);

    dfs(idx + 1);

    prefix_end = old_end;
    while (ready_undo.size() > undo_base) {
      ready[ready_undo.back().first] = ready_undo.back().second;
      ready_undo.pop_back();
    }
    if (limit >= 0) {
      for (int d = 0; d < delay; ++d) {
        --usage[c][static_cast<std::size_t>(t + d)];
      }
    }
    return !(stopped() || (first_leaf_exit && found_leaf));
  }

  void dfs(std::size_t idx) {
    if (stopped()) return;
    count_node();
    if (idx == ctx.ops.size()) {
      record_leaf();
      return;
    }
    if (idx < memo_max_idx && !memo_allows(idx)) {
      ++pruned_dominance;
      return;
    }
    const std::size_t c = ctx.cls[idx];
    const int limit = resources.count(static_cast<cdfg::UnitClass>(c));
    const int delay = ctx.delay[idx];
    for (int t = ready[idx];; ++t) {
      const std::uint64_t packed =
          (static_cast<std::uint64_t>(t + ctx.tail[idx])
           << Incumbent::kBranchShift) |
          branch;
      if (packed >= inc.key.load(std::memory_order_acquire)) {
        ++pruned_bound;
        break;
      }
      bool fits = true;
      if (limit >= 0) {
        for (int d = 0; d < delay && fits; ++d) {
          const auto step = static_cast<std::size_t>(t + d);
          if (step < usage[c].size() && usage[c][step] >= limit) fits = false;
        }
      }
      if (!fits) continue;
      if (!descend(idx, t)) return;
    }
    current.set_start(ctx.ops[idx], Schedule::kUnscheduled);
  }
};

struct SolveOutcome {
  Schedule best;
  int latency = 0;
  bool improved = false;
  bool truncated = false;
  std::uint64_t nodes = 0;
};

// Finds the minimum-latency schedule strictly below `bound_init`, or — if
// `first_leaf_exit` — any schedule below it (the first one in canonical
// DFS order).  first_leaf_exit requires pool == nullptr: with several
// branches racing, "first leaf found" would depend on timing.
SolveOutcome solve(const SearchContext& ctx, const ResourceSet& resources,
                   int bound_init, std::uint64_t node_limit,
                   exec::ThreadPool* pool, bool first_leaf_exit) {
  SolveOutcome out;
  out.best = Schedule(*ctx.g);
  if (ctx.ops.empty()) {
    // The empty leaf: latency 0, trivially below any positive bound.
    out.improved = bound_init > 0;
    out.latency = 0;
    out.nodes = 1;
    return out;
  }

  LWM_SPAN("bnb/solve");
  Incumbent inc(bound_init);
  Budget budget(node_limit);

  // First-level branches: each start step of ops[0] admitted by the
  // initial bound.  ops[0] has no executable predecessors, so it is
  // ready at step 0.
  const std::size_t branches =
      static_cast<std::size_t>(std::max(0, bound_init - ctx.tail[0]));
  std::atomic<std::uint64_t> nodes_total{0};
  exec::parallel_for(pool, branches, [&](std::size_t b) {
    LWM_SPAN("bnb/branch");
    BranchSearcher s(ctx, resources, inc, budget);
    s.memo_max_idx = ctx.ops.size() / 2;
    s.branch = b;
    s.first_leaf_exit = first_leaf_exit;
    const int t = static_cast<int>(b);
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(t + ctx.tail[0])
         << Incumbent::kBranchShift) |
        b;
    if (packed < inc.key.load(std::memory_order_acquire) && !s.stopped()) {
      s.count_node();
      // No resource check at the root: usage is empty, so any step fits
      // (exactly the historical searcher's first iteration).
      (void)s.descend(0, t);
    }
    s.finish();
    nodes_total.fetch_add(s.total_nodes, std::memory_order_relaxed);
    LWM_COUNT("bnb/nodes", s.total_nodes);
    LWM_COUNT("bnb/pruned_bound", s.pruned_bound);
    LWM_COUNT("bnb/pruned_dominance", s.pruned_dominance);
    LWM_COUNT("bnb/incumbent_updates", s.incumbent_updates);
  });

  out.truncated = budget.stop.load(std::memory_order_acquire);
  out.nodes = (out.truncated && node_limit != 0)
                  ? node_limit
                  : nodes_total.load(std::memory_order_relaxed);
  const std::uint64_t final_key = inc.key.load(std::memory_order_acquire);
  if (final_key < (static_cast<std::uint64_t>(bound_init)
                   << Incumbent::kBranchShift)) {
    out.improved = true;
    out.latency = static_cast<int>(final_key >> Incumbent::kBranchShift);
    out.best = inc.best;
  }
  return out;
}

}  // namespace

BnbResult bnb_min_latency(const Graph& g, const BnbOptions& opts) {
  // Seed the incumbent with list scheduling — gives a tight initial bound.
  ListScheduleOptions lopts;
  lopts.resources = opts.resources;
  lopts.filter = opts.filter;
  const Schedule seed = list_schedule(g, lopts);
  const int seed_latency = seed.length(g);

  const SearchContext ctx = build_context(g, opts.filter);
  const SolveOutcome sol = solve(ctx, opts.resources, seed_latency + 1,
                                 opts.node_limit, opts.pool, false);

  BnbResult result;
  result.search_nodes = sol.nodes;
  result.optimal = !sol.truncated;
  if (sol.truncated || !sol.improved) {
    // Never improved on the seed (search ran dry: the seed is optimal),
    // or the search was cut off (deterministic fallback; see bnb.h).
    result.schedule = seed;
    result.latency = seed_latency;
  } else {
    result.schedule = sol.best;
    result.latency = sol.latency;
  }
  return result;
}

MinUnitsResult bnb_min_units(const cdfg::Graph& g, int latency,
                             const BnbOptions& opts) {
  const SearchContext ctx = build_context(g, opts.filter);
  if (latency < ctx.critical_path) {
    throw std::invalid_argument("bnb_min_units: latency below critical path");
  }

  // Per-class op counts and occupancy lower bounds ceil(work / latency).
  std::array<int, cdfg::kNumUnitClasses> work{};
  for (NodeId n : g.nodes()) {
    const cdfg::Node& node = g.node(n);
    if (!cdfg::is_executable(node.kind)) continue;
    work[static_cast<std::size_t>(cdfg::unit_class(node.kind))] += node.delay;
  }
  std::array<int, cdfg::kNumUnitClasses> lower{};
  std::vector<std::size_t> classes;  // classes actually used
  for (std::size_t c = 1; c < cdfg::kNumUnitClasses; ++c) {
    if (work[c] == 0) continue;
    lower[c] = (work[c] + latency - 1) / latency;
    classes.push_back(c);
  }

  MinUnitsResult result;
  if (classes.empty()) {
    result.total_units = 0;
    return result;
  }
  int base_total = 0;
  for (const std::size_t c : classes) base_total += lower[c];

  const auto make_resources = [&](const std::vector<int>& add) {
    ResourceSet res = ResourceSet::unlimited();
    for (std::size_t i = 0; i < classes.size(); ++i) {
      res.set_count(static_cast<cdfg::UnitClass>(classes[i]),
                    lower[classes[i]] + add[i]);
    }
    return res;
  };

  // Warm incumbent carried across failed totals: the shortest heuristic
  // schedule seen so far.  When it fits a later vector's resources it
  // replaces the per-vector list-scheduling run entirely.
  std::optional<Schedule> warm;
  UnitUsage warm_peak;
  int warm_len = INT_MAX;

  // Try totals ascending; for each total, evaluate all distributions of
  // the extra units concurrently.  The winner is the lexicographically
  // first feasible vector — every vector before it is always fully
  // evaluated (aborts only fire above an already-feasible index), so the
  // outcome is identical at any thread count.
  for (int extra = 0;; ++extra) {
    // Compositions of `extra` into |classes| bins, in the historical
    // enumeration order (first bin slowest-varying, last bin remainder).
    std::vector<std::vector<int>> adds;
    std::vector<int> add(classes.size(), 0);
    const std::function<void(std::size_t, int)> place = [&](std::size_t idx,
                                                            int left) {
      if (idx + 1 == classes.size()) {
        add[idx] = left;
        adds.push_back(add);
        return;
      }
      for (int give = 0; give <= left; ++give) {
        add[idx] = give;
        place(idx + 1, left - give);
      }
    };
    place(0, extra);

    struct Eval {
      bool feasible = false;
      bool truncated = false;
      bool ran_list = false;
      int list_len = 0;
      std::uint64_t nodes = 0;
      Schedule witness;
      Schedule list_sched;
    };
    std::vector<Eval> evals(adds.size());
    std::atomic<int> winner{INT_MAX};
    const auto offer_winner = [&](int i) {
      int cur = winner.load(std::memory_order_acquire);
      while (i < cur &&
             !winner.compare_exchange_weak(cur, i, std::memory_order_acq_rel)) {
      }
    };

    exec::parallel_for(opts.pool, adds.size(), [&](std::size_t i) {
      if (winner.load(std::memory_order_acquire) < static_cast<int>(i)) return;
      Eval& ev = evals[i];
      const ResourceSet res = make_resources(adds[i]);

      // Heuristic-first: reuse the warm incumbent when it fits these
      // resources, otherwise list-schedule this vector.
      const Schedule* h = nullptr;
      int h_len = 0;
      bool warm_fits = warm.has_value();
      if (warm_fits) {
        for (const std::size_t c : classes) {
          const int cnt = res.count(static_cast<cdfg::UnitClass>(c));
          if (cnt >= 0 && warm_peak.peak[c] > cnt) {
            warm_fits = false;
            break;
          }
        }
      }
      if (warm_fits) {
        h = &*warm;
        h_len = warm_len;
      } else {
        ListScheduleOptions lopts;
        lopts.resources = res;
        lopts.filter = opts.filter;
        ev.list_sched = list_schedule(g, lopts);
        ev.list_len = ev.list_sched.length(g);
        ev.ran_list = true;
        h = &ev.list_sched;
        h_len = ev.list_len;
      }
      if (h_len <= latency) {
        ev.feasible = true;
        ev.witness = *h;
        offer_winner(static_cast<int>(i));
        return;
      }
      if (winner.load(std::memory_order_acquire) < static_cast<int>(i)) return;

      // Feasibility search: incumbent latency + 1, stop at the first
      // witness (serial inside — the vectors are the parallel axis).
      const SolveOutcome sol = solve(ctx, res, latency + 1, opts.node_limit,
                                     nullptr, /*first_leaf_exit=*/true);
      ev.nodes = sol.nodes;
      ev.truncated = sol.truncated;
      if (sol.improved) {
        ev.feasible = true;
        ev.witness = sol.best;
        offer_winner(static_cast<int>(i));
      }
    });

    int w = -1;
    for (std::size_t i = 0; i < evals.size(); ++i) {
      if (evals[i].feasible) {
        w = static_cast<int>(i);
        break;
      }
    }
    if (w >= 0) {
      // Account only the deterministically-explored prefix [0, w]; later
      // vectors may or may not have been aborted mid-flight.
      for (int i = 0; i <= w; ++i) {
        result.search_nodes += evals[i].nodes;
        if (evals[i].truncated) result.optimal = false;
      }
      result.resources = make_resources(adds[static_cast<std::size_t>(w)]);
      result.schedule = evals[static_cast<std::size_t>(w)].witness;
      result.total_units = base_total + extra;
      return result;
    }

    // No winner: nothing aborted, every vector was fully evaluated.
    for (const Eval& ev : evals) {
      result.search_nodes += ev.nodes;
      if (ev.truncated) result.optimal = false;
      if (ev.ran_list && ev.list_len < warm_len) {
        warm = ev.list_sched;
        warm_len = ev.list_len;
        warm_peak = peak_usage(g, *warm);
      }
    }
    if (extra > static_cast<int>(g.operation_count())) {
      throw std::logic_error("bnb_min_units: runaway search");
    }
  }
}

}  // namespace lwm::sched
