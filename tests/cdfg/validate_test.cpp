#include "cdfg/validate.h"

#include <gtest/gtest.h>

#include "cdfg/builder.h"
#include "dfglib/iir4.h"

namespace lwm::cdfg {
namespace {

TEST(ValidateTest, CleanGraphPasses) {
  EXPECT_TRUE(validate(lwm::dfglib::iir4_parallel()).empty());
  EXPECT_NO_THROW(validate_or_throw(lwm::dfglib::iir4_parallel()));
}

TEST(ValidateTest, CycleReported) {
  Graph g("cyc");
  const NodeId a = g.add_node(OpKind::kAdd, "a");
  const NodeId b = g.add_node(OpKind::kAdd, "b");
  const NodeId i = g.add_node(OpKind::kInput, "i");
  g.add_edge(i, a);
  g.add_edge(a, b);
  g.add_edge(b, a, EdgeKind::kTemporal);
  const NodeId o = g.add_node(OpKind::kOutput, "o");
  g.add_edge(b, o);
  const auto v = validate(g);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().message.find("cycle"), std::string::npos);
}

TEST(ValidateTest, DanglingOperationReported) {
  Graph g("dangle");
  const NodeId i = g.add_node(OpKind::kInput, "i");
  const NodeId a = g.add_node(OpKind::kAdd, "a");
  g.add_edge(i, a);  // a has no consumers
  EXPECT_FALSE(validate(g).empty());
  EXPECT_THROW(validate_or_throw(g), std::runtime_error);
}

TEST(ValidateTest, StoreAndBranchMayDangle) {
  Graph g("store");
  const NodeId i = g.add_node(OpKind::kInput, "i");
  const NodeId s = g.add_node(OpKind::kStore, "s");
  const NodeId br = g.add_node(OpKind::kBranch, "br");
  g.add_edge(i, s);
  g.add_edge(i, br);
  EXPECT_TRUE(validate(g).empty());
}

TEST(ValidateTest, InputWithFaninReported) {
  Graph g("bad_in");
  const NodeId i1 = g.add_node(OpKind::kInput, "i1");
  const NodeId i2 = g.add_node(OpKind::kInput, "i2");
  g.add_edge(i1, i2);
  EXPECT_FALSE(validate(g).empty());
}

TEST(ValidateTest, OutputArityChecked) {
  Graph g("bad_out");
  const NodeId i = g.add_node(OpKind::kInput, "i");
  const NodeId a = g.add_node(OpKind::kAdd, "a");
  const NodeId o = g.add_node(OpKind::kOutput, "o");
  g.add_edge(i, a);
  g.add_edge(i, o);
  g.add_edge(a, o);  // two producers
  EXPECT_FALSE(validate(g).empty());
}

TEST(ValidateTest, OperationWithoutInputsReported) {
  Graph g("no_in");
  const NodeId a = g.add_node(OpKind::kAdd, "a");
  const NodeId o = g.add_node(OpKind::kOutput, "o");
  g.add_edge(a, o);
  EXPECT_FALSE(validate(g).empty());
}

}  // namespace
}  // namespace lwm::cdfg
