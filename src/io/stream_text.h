// stream_text.h — chunked line scanning over an istream.
//
// LineCursor (text.h) walks a string that is already in memory, which
// means the whole artifact passed through the read_file/read_stream size
// cap first.  Mega-design CDFGs blow that cap by design (a 1M-node graph
// serializes to ~60 MiB), so StreamLineCursor keeps only a sliding
// window in memory: a carry buffer holding at most one partial line plus
// one refill chunk.  Line numbers and the LineLexer column model are
// identical to LineCursor, so diagnostics from a streaming parse point
// at the same file:line:col an in-memory parse would report.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "io/parse_result.h"

namespace lwm::io {

struct StreamLimits {
  /// Refill granularity.  Larger chunks amortize istream calls; the
  /// window never holds more than one chunk plus one partial line.
  std::size_t chunk_bytes = std::size_t{256} << 10;
  /// Cap on a single line.  A "line" this long is not a CDFG directive,
  /// it is a malformed or adversarial file — refuse it instead of
  /// buffering without bound (the streaming parser has no file cap, so
  /// the per-line cap is its only memory guard).
  std::size_t max_line_bytes = std::size_t{1} << 20;
};

/// Splits an istream into lines ('\n' separated, trailing '\r'
/// stripped), reading in chunks.  The view returned by next() points
/// into the internal window and is invalidated by the following next()
/// call.  After next() returns nullopt, check error(): a read failure or
/// an over-long line yields a Diagnostic (file left empty — the caller
/// names the source), otherwise the input simply ended.
class StreamLineCursor {
 public:
  explicit StreamLineCursor(std::istream& is, const StreamLimits& limits = {});

  /// Returns the next line without its terminator, or nullopt at end of
  /// input or on error.
  std::optional<std::string_view> next();

  /// 1-based line number of the line most recently returned by next().
  [[nodiscard]] int line_number() const noexcept { return lineno_; }

  /// Set when next() stopped on a failure rather than end of input.
  [[nodiscard]] const std::optional<Diagnostic>& error() const noexcept {
    return error_;
  }

 private:
  bool refill();

  std::istream& is_;
  StreamLimits limits_;
  std::string window_;
  std::size_t pos_ = 0;  ///< start of the unconsumed region of window_
  int lineno_ = 0;
  bool eof_ = false;
  std::optional<Diagnostic> error_;
};

}  // namespace lwm::io
