// protocol.h — end-to-end local-watermarking flows (paper Fig. 1).
//
// Ties the pieces together:
//   original spec -> [preprocess: encode constraints from signature]
//                 -> [off-the-shelf synthesis honoring all constraints]
//                 -> [strip the added constraints from the spec]
//                 -> optimized solution satisfying original + hidden
//                    constraints, plus the designer's watermark records.
#pragma once

#include <vector>

#include "cdfg/graph.h"
#include "crypto/signature.h"
#include "sched/force_directed.h"
#include "sched/list_sched.h"
#include "tmatch/cover.h"
#include "vliw/vliw_sched.h"
#include "wm/detector.h"
#include "wm/pc.h"
#include "wm/reg_constraints.h"
#include "wm/sched_constraints.h"
#include "wm/tm_constraints.h"

namespace lwm::wm {

enum class Scheduler { kList, kForceDirected };

struct SchedProtocolConfig {
  SchedWmOptions wm;
  int watermark_count = 1;  ///< number of local watermarks to embed
  Scheduler scheduler = Scheduler::kList;
  sched::ResourceSet resources = sched::ResourceSet::unlimited();
};

struct SchedProtocolResult {
  cdfg::Graph solution;      ///< the stripped, schedulable specification
  std::vector<SchedWatermark> marks;
  sched::Schedule schedule;  ///< watermark-honoring schedule
  sched::Schedule baseline;  ///< unconstrained schedule of the original
  PcEstimate pc;             ///< window-model estimate across all marks
  int latency_marked = 0;
  int latency_baseline = 0;

  [[nodiscard]] double latency_overhead() const {
    return latency_baseline == 0
               ? 0.0
               : static_cast<double>(latency_marked - latency_baseline) /
                     latency_baseline;
  }
};

/// Runs the full scheduling-watermark protocol on a copy of `original`.
[[nodiscard]] SchedProtocolResult run_sched_protocol(
    const cdfg::Graph& original, const crypto::Signature& sig,
    const SchedProtocolConfig& config);

/// Table I variant: the watermark is materialized as unit operations in
/// a compiled instruction stream and measured on the VLIW machine.
struct VliwProtocolResult {
  std::vector<SchedWatermark> marks;
  int cycles_marked = 0;
  int cycles_baseline = 0;
  PcEstimate pc;

  [[nodiscard]] double cycle_overhead() const {
    return cycles_baseline == 0
               ? 0.0
               : static_cast<double>(cycles_marked - cycles_baseline) /
                     cycles_baseline;
  }
};
[[nodiscard]] VliwProtocolResult run_vliw_protocol(const cdfg::Graph& original,
                                                   const crypto::Signature& sig,
                                                   const SchedWmOptions& wm_opts,
                                                   int watermark_count,
                                                   const vliw::Machine& machine);

/// Register-binding protocol: schedule, plan share-pair watermarks over
/// the lifetimes, bind with the constraints, strip nothing (register
/// watermarks live in the binding, not the specification).
struct RegProtocolConfig {
  RegWmOptions wm;
  int watermark_count = 2;
};

struct RegProtocolResult {
  sched::Schedule schedule;
  std::vector<RegWatermark> marks;
  regbind::Binding binding;           ///< watermark-honoring binding
  regbind::Binding baseline;          ///< unconstrained LEFT-EDGE binding
  double log10_pc = 0.0;

  [[nodiscard]] int register_overhead() const {
    return binding.register_count - baseline.register_count;
  }
};

/// Throws std::runtime_error if the planned constraints are unbindable
/// (cannot happen for marks produced by plan_reg_watermarks, which
/// pre-validates, but a defensive check is kept).
[[nodiscard]] RegProtocolResult run_reg_protocol(const cdfg::Graph& original,
                                                 const crypto::Signature& sig,
                                                 const RegProtocolConfig& config);

struct TmProtocolConfig {
  TmWmOptions wm;
  int budget_steps = -1;  ///< control-step budget; -1 = critical path
};

struct TmProtocolResult {
  TmWatermark watermark;
  tmatch::Cover cover_marked;
  tmatch::Cover cover_baseline;
  tmatch::ModuleAllocation alloc_marked;
  tmatch::ModuleAllocation alloc_baseline;
  PcEstimate pc;

  [[nodiscard]] double module_overhead() const {
    const int base = alloc_baseline.total();
    return base == 0 ? 0.0
                     : static_cast<double>(alloc_marked.total() - base) / base;
  }
};
/// Runs the template-matching protocol; throws std::runtime_error if no
/// watermark can be planned on this design.
[[nodiscard]] TmProtocolResult run_tm_protocol(const cdfg::Graph& original,
                                               const tmatch::TemplateLibrary& lib,
                                               const crypto::Signature& sig,
                                               const TmProtocolConfig& config);

}  // namespace lwm::wm
