// template_lib.h — module/template library for template matching.
//
// In template mapping at the behavioral level, "groups of primitive
// operations are replaced with more complex and specialized hardware
// units" (paper §IV-B).  A Template is a rooted operation tree: the root
// produces the module's output, internal edges are hard-wired value paths
// that disappear inside the module, and the leaves' missing operands are
// the module's input ports.
#pragma once

#include <string>
#include <vector>

#include "cdfg/op.h"

namespace lwm::tmatch {

/// One operation inside a template tree.
struct TemplateOp {
  cdfg::OpKind kind = cdfg::OpKind::kAdd;
  /// Indices (into Template::ops) of the operand subtrees hard-wired into
  /// this op.  Operand slots not listed here are external input ports.
  std::vector<int> children;
};

/// A rooted operation tree implementable as one hardware module.
struct Template {
  std::string name;
  std::vector<TemplateOp> ops;  ///< ops[0] is the root
  double area = 1.0;            ///< relative area cost of one instance

  [[nodiscard]] int op_count() const { return static_cast<int>(ops.size()); }
};

/// An ordered collection of templates; index = template id.
class TemplateLibrary {
 public:
  /// Adds a template; returns its id.  Validates tree shape (children
  /// in range, acyclic, all ops reachable from the root).
  int add(Template t);

  [[nodiscard]] const Template& at(int id) const { return templates_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] int size() const { return static_cast<int>(templates_.size()); }

  /// A library in the spirit of the paper's Fig. 4 datapath libraries:
  /// single-op modules for every arithmetic kind used by the benchmark
  /// designs (add, sub, mul, shift) plus the composite modules
  ///   add2   — two chained adders (the paper's T_1),
  ///   mac    — multiplier feeding an adder,
  ///   shadd  — shifter feeding an adder,
  ///   addsub — adder feeding a subtractor.
  static TemplateLibrary standard();

  /// Only single-op modules — the covering baseline with no specialized
  /// hardware (every template-matching solution degenerates to 1 module
  /// per operation kind instance).
  static TemplateLibrary primitive();

 private:
  std::vector<Template> templates_;
};

}  // namespace lwm::tmatch
