// attack.h — tampering attacks and resistance analysis.
//
// Models the §IV-A adversary: someone who wants to keep the stolen
// solution's quality but destroy the proof of authorship by *local*
// changes — re-ordering pairs of operations without re-running synthesis.
// Provides (a) the closed-form cost analysis behind the paper's
// "31,729 pairs ≈ 63% of the solution" discussion and (b) an executable
// attack that legally perturbs a schedule so the claim can be measured.
#pragma once

#include <cstdint>
#include <random>

#include "cdfg/analysis.h"
#include "cdfg/graph.h"
#include "sched/schedule.h"
#include "wm/sched_constraints.h"

namespace lwm::wm {

/// Closed-form attack cost.  Assumptions (documented deviation — the
/// paper does not publish its exact model): the design has `qualified`
/// operations eligible for watermark edges of which `k` pairs are marked;
/// each watermark edge retains expected per-edge coincidence `mean_ratio`
/// (paper example: 1/2); a reordered pair destroys a watermark edge iff
/// it moves one of the edge's endpoints.  To push P_c above
/// `target_log10_pc` the attacker must break enough edges that the
/// survivors' product exceeds the target.
struct AttackCost {
  int edges_to_break = 0;       ///< watermark edges that must be destroyed
  long long pairs_to_alter = 0; ///< random pair reorderings required
  double fraction_of_solution = 0.0;  ///< nodes touched / qualified nodes
};
[[nodiscard]] AttackCost attack_cost(long long qualified, int k,
                                     double target_log10_pc,
                                     double mean_ratio = 0.5);

/// Executable schedule-perturbation attack: repeatedly picks a random
/// scheduled operation and moves it to a random different step inside
/// its precedence-legal range (neighbors' current starts define the
/// range), flipping execution orders without breaking the schedule.
/// Returns the number of (node, node) pairs whose relative order changed.
struct PerturbResult {
  sched::Schedule schedule;
  long long pairs_reordered = 0;
  int moves_applied = 0;
};
[[nodiscard]] PerturbResult perturb_schedule(const cdfg::Graph& g,
                                             const sched::Schedule& s,
                                             int moves, std::uint64_t seed,
                                             cdfg::EdgeFilter filter = cdfg::EdgeFilter::specification());

/// Fraction of the watermark's constraints still satisfied by `s`.
[[nodiscard]] double constraints_surviving(const cdfg::Graph& g,
                                           const sched::Schedule& s,
                                           const SchedWatermark& wm);

/// Structural tampering: inserts `count` decoy unit operations by
/// splitting data edges whose endpoints have at least one idle step
/// between them, scheduling each decoy into that gap.  Original
/// operations keep their control steps, so the attack is free in
/// schedule quality — its damage is to the *structure* the detector's
/// locality carving walks (fan-in shapes change wherever a decoy
/// lands).  Returns the inserted node ids; `s` is updated in place.
[[nodiscard]] std::vector<cdfg::NodeId> insert_decoys(cdfg::Graph& g,
                                                      sched::Schedule& s,
                                                      int count,
                                                      std::uint64_t seed);

}  // namespace lwm::wm
