#include "sched/schedule_io.h"

#include <gtest/gtest.h>

#include "cdfg/serialize.h"
#include "dfglib/iir4.h"
#include "sched/list_sched.h"

namespace lwm::sched {
namespace {

using cdfg::Graph;

TEST(ScheduleIoTest, RoundTripExact) {
  const Graph g = lwm::dfglib::iir4_parallel();
  const Schedule s = list_schedule(g);
  const std::string text = schedule_to_text(g, s);
  const Schedule back = schedule_from_text(g, text);
  for (cdfg::NodeId n : g.node_ids()) {
    EXPECT_EQ(back.is_scheduled(n), s.is_scheduled(n)) << g.node(n).name;
    if (s.is_scheduled(n)) {
      EXPECT_EQ(back.start_of(n), s.start_of(n)) << g.node(n).name;
    }
  }
  EXPECT_EQ(schedule_to_text(g, back), text);
}

TEST(ScheduleIoTest, SurvivesGraphReserialization) {
  // The name-keyed format must rebase onto a re-parsed graph.
  const Graph g = lwm::dfglib::iir4_parallel();
  const Schedule s = list_schedule(g);
  const std::string sched_text = schedule_to_text(g, s);
  const Graph h = cdfg::from_text(cdfg::to_text(g));
  const Schedule rebased = schedule_from_text(h, sched_text);
  EXPECT_TRUE(verify_schedule(h, rebased).ok);
  EXPECT_EQ(rebased.length(h), s.length(g));
}

TEST(ScheduleIoTest, MalformedInputRejected) {
  const Graph g = lwm::dfglib::iir4_parallel();
  EXPECT_THROW((void)schedule_from_text(g, ""), std::runtime_error);
  EXPECT_THROW((void)schedule_from_text(g, "at A1 0\n"), std::runtime_error)
      << "missing header";
  EXPECT_THROW((void)schedule_from_text(g, "schedule x\nat nope 0\n"),
               std::runtime_error)
      << "unknown node";
  EXPECT_THROW((void)schedule_from_text(g, "schedule x\nat A1\n"),
               std::runtime_error)
      << "missing step";
  EXPECT_THROW((void)schedule_from_text(g, "schedule x\nfrobnicate\n"),
               std::runtime_error);
}

TEST(ScheduleIoTest, CommentsAndPartialSchedulesOk) {
  const Graph g = lwm::dfglib::iir4_parallel();
  const Schedule s = schedule_from_text(g,
                                        "schedule iir\n"
                                        "# only two ops pinned\n"
                                        "at A1 3\n"
                                        "at C1 0\n");
  EXPECT_EQ(s.start_of(g.find("A1")), 3);
  EXPECT_EQ(s.start_of(g.find("C1")), 0);
  EXPECT_FALSE(s.is_scheduled(g.find("A9")));
}

}  // namespace
}  // namespace lwm::sched
