// mediabench.h — synthetic stand-ins for the Table I applications.
//
// The paper runs operation-scheduling watermarks over MediaBench
// programs compiled with the IMPACT C compiler for a 4-issue VLIW.
// Neither MediaBench sources, IMPACT, nor the resulting traces are
// redistributable here, so each application is reconstructed as a
// layered random dataflow graph matching the paper's published
// operation count, with a media-workload op mix (documented substitution
// — see DESIGN.md).  Graphs are deterministic per application.
#pragma once

#include <string>
#include <vector>

#include "cdfg/graph.h"

namespace lwm::dfglib {

struct MediabenchApp {
  std::string name;  ///< as printed in Table I
  int operations;    ///< Table I column "Operations"
};

/// The eight Table I rows, in table order.
[[nodiscard]] const std::vector<MediabenchApp>& mediabench_table();

/// Builds the synthetic CDFG for one application.
[[nodiscard]] cdfg::Graph make_mediabench_app(const MediabenchApp& app);

}  // namespace lwm::dfglib
