// full_stack_protection — every protocol on one design, end to end:
// scheduling watermarks (hidden temporal edges), register watermarks
// (hidden share pairs), datapath synthesis through the HLS facade,
// archival of all detection records to the text format, and detection
// from the reloaded archive — the complete vendor workflow.
#include <cstdio>
#include <sstream>

#include "cdfg/stats.h"
#include "dfglib/synth.h"
#include "hls/datapath.h"
#include "wm/records_io.h"

int main() {
  using namespace lwm;

  cdfg::Graph design = dfglib::make_dsp_design("radar_frontend", 18, 300, 777);
  const crypto::Signature vendor("sensorworks", "sensorworks-master-key");
  std::printf("design: %s\n", cdfg::compute_stats(design).to_string().c_str());

  // --- baseline datapath ------------------------------------------------------
  hls::DatapathOptions base_opts;
  base_opts.filter = cdfg::EdgeFilter::specification();
  const hls::Datapath baseline = hls::synthesize_datapath(design, base_opts);
  std::printf("baseline   : %s\n", baseline.to_string(base_opts).c_str());

  // --- layer 1: scheduling watermarks -----------------------------------------
  wm::SchedWmOptions sopts;
  sopts.domain.tau = 6;
  sopts.k = 4;
  sopts.min_edges = 2;
  sopts.epsilon = 0.3;
  const auto sched_marks = wm::embed_local_watermarks(design, vendor, 4, sopts);

  // --- layer 2: register watermarks (planned against the marked schedule) ----
  hls::DatapathOptions probe_opts;  // honors the temporal edges
  const hls::Datapath probe = hls::synthesize_datapath(design, probe_opts);
  const auto lifetimes = regbind::compute_lifetimes(design, probe.schedule);
  wm::RegWmOptions ropts;
  ropts.domain.tau = 6;
  ropts.m = 3;
  ropts.min_pairs = 2;
  const auto reg_marks =
      wm::plan_reg_watermarks(design, lifetimes, vendor, 3, ropts);

  // --- synthesize the protected datapath --------------------------------------
  hls::DatapathOptions marked_opts;
  marked_opts.reg_constraints = wm::to_binding_constraints(reg_marks);
  const hls::Datapath protected_dp = hls::synthesize_datapath(design, marked_opts);
  std::printf("protected  : %s\n", protected_dp.to_string(marked_opts).c_str());
  std::printf("overhead   : latency %+d step(s), %+d unit(s), %+d register(s), "
              "area %+.1f (%.2f%%)\n",
              protected_dp.latency - baseline.latency,
              protected_dp.total_units() - baseline.total_units(),
              protected_dp.registers - baseline.registers,
              protected_dp.area(marked_opts) - baseline.area(base_opts),
              100.0 * (protected_dp.area(marked_opts) - baseline.area(base_opts)) /
                  baseline.area(base_opts));

  // --- archive the records -----------------------------------------------------
  wm::RecordArchive archive;
  for (const auto& m : sched_marks) {
    archive.sched.push_back(wm::SchedRecord::from(m, design));
  }
  for (const auto& m : reg_marks) {
    archive.reg.push_back(wm::RegRecord::from(m, design));
  }
  const std::string archive_text = wm::to_text(archive);
  std::printf("\narchived %zu scheduling + %zu register records "
              "(%zu bytes):\n%s",
              archive.sched.size(), archive.reg.size(), archive_text.size(),
              archive_text.c_str());

  // --- years later: detection from the reloaded archive ------------------------
  cdfg::Graph shipped = design;
  shipped.strip_temporal_edges();
  const wm::RecordArchive reloaded = wm::records_from_text(archive_text);

  int sched_found = 0;
  for (const auto& rec : reloaded.sched) {
    sched_found += wm::detect_sched_watermark(shipped, protected_dp.schedule,
                                              vendor, rec)
                       .detected();
  }
  const auto shipped_lifetimes =
      regbind::compute_lifetimes(shipped, protected_dp.schedule);
  int reg_found = 0;
  for (const auto& rec : reloaded.reg) {
    reg_found += wm::detect_reg_watermark(shipped, shipped_lifetimes,
                                          protected_dp.binding, vendor, rec)
                     .detected();
  }
  std::printf("\ndetection from reloaded archive: %d/%zu scheduling, "
              "%d/%zu register watermarks\n",
              sched_found, reloaded.sched.size(), reg_found,
              reloaded.reg.size());
  return (sched_found > 0 && reg_found > 0) ? 0 : 1;
}
