// StreamLineCursor and the streaming CDFG parser: line semantics must
// match LineCursor exactly (same line numbers, same '\r' handling, no
// phantom empty line after a trailing '\n'), the per-line cap and read
// failures must surface as Diagnostics, and a CDFG bigger than the
// whole-file read cap must stream-parse byte-exactly while read_file
// refuses it with a message that names the cap and the streaming entry
// point.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cdfg/serialize.h"
#include "dfglib/synth.h"
#include "io/source.h"
#include "io/stream_text.h"
#include "io/text.h"

namespace lwm::io {
namespace {

std::vector<std::string> stream_lines(const std::string& text,
                                      const StreamLimits& limits = {}) {
  std::istringstream in(text);
  StreamLineCursor cursor(in, limits);
  std::vector<std::string> out;
  while (const auto line = cursor.next()) out.emplace_back(*line);
  EXPECT_FALSE(cursor.error().has_value());
  return out;
}

std::vector<std::string> memory_lines(const std::string& text) {
  LineCursor cursor(text);
  std::vector<std::string> out;
  while (const auto line = cursor.next()) out.emplace_back(*line);
  return out;
}

TEST(StreamLineCursorTest, MatchesLineCursorOnEdgeCases) {
  const std::string cases[] = {
      "",
      "\n",
      "one line no newline",
      "a\nb\nc\n",
      "a\nb\nc",
      "\n\n\n",
      "crlf\r\nlines\r\n",
      "mixed\r\nunix\nlast\r",
  };
  for (const std::string& text : cases) {
    EXPECT_EQ(stream_lines(text), memory_lines(text)) << '"' << text << '"';
  }
}

TEST(StreamLineCursorTest, LineNumbersMatchLineCursor) {
  const std::string text = "a\nb\n\nd";
  std::istringstream in(text);
  StreamLineCursor stream(in);
  LineCursor memory(text);
  while (true) {
    const auto s = stream.next();
    const auto m = memory.next();
    ASSERT_EQ(s.has_value(), m.has_value());
    if (!s) break;
    EXPECT_EQ(*s, *m);
    EXPECT_EQ(stream.line_number(), memory.line_number());
  }
}

TEST(StreamLineCursorTest, LinesSpanningChunkBoundaries) {
  // Tiny chunks force every line to straddle at least one refill.
  StreamLimits limits;
  limits.chunk_bytes = 7;
  std::string text;
  std::vector<std::string> want;
  for (int i = 0; i < 50; ++i) {
    want.push_back("line-" + std::to_string(i) + std::string(i % 13, 'x'));
    text += want.back() + "\n";
  }
  EXPECT_EQ(stream_lines(text, limits), want);
}

TEST(StreamLineCursorTest, OverLongLineIsAnError) {
  StreamLimits limits;
  limits.chunk_bytes = 16;
  limits.max_line_bytes = 32;
  std::istringstream in("short\n" + std::string(100, 'y') + "\nafter\n");
  StreamLineCursor cursor(in, limits);
  ASSERT_TRUE(cursor.next().has_value());
  EXPECT_FALSE(cursor.next().has_value());
  ASSERT_TRUE(cursor.error().has_value());
  EXPECT_NE(cursor.error()->message.find("32"), std::string::npos)
      << cursor.error()->message;
  EXPECT_EQ(cursor.error()->line, 2);
}

TEST(StreamParseTest, AcceptsSameLanguageAsInMemoryParser) {
  const cdfg::Graph g =
      dfglib::make_layered_dag("parity", 200, 8, dfglib::OpMix{}, 5);
  const std::string text = cdfg::to_text(g);
  std::istringstream in(text);
  auto streamed = cdfg::parse_cdfg_stream(in, "parity.cdfg");
  auto memory = cdfg::parse_cdfg(text, "parity.cdfg");
  ASSERT_TRUE(streamed.ok());
  ASSERT_TRUE(memory.ok());
  EXPECT_EQ(cdfg::to_text(streamed.value()), cdfg::to_text(memory.value()));
  EXPECT_EQ(cdfg::to_text(streamed.value()), text);
}

TEST(StreamParseTest, DiagnosticsMatchInMemoryParser) {
  const std::string broken = "cdfg bad\nnode n0 add\nedge n0 -> n9 data\n";
  std::istringstream in(broken);
  const auto streamed = cdfg::parse_cdfg_stream(in, "bad.cdfg");
  const auto memory = cdfg::parse_cdfg(broken, "bad.cdfg");
  ASSERT_FALSE(streamed.ok());
  ASSERT_FALSE(memory.ok());
  EXPECT_EQ(streamed.diag().to_string(), memory.diag().to_string());
}

TEST(StreamParseTest, MissingHeaderAndOpenFailure) {
  std::istringstream empty("");
  EXPECT_FALSE(cdfg::parse_cdfg_stream(empty, "empty.cdfg").ok());
  const auto missing = cdfg::read_cdfg_file("/nonexistent/x.cdfg");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.diag().message.find("cannot open"), std::string::npos);
}

TEST(StreamParseTest, OversizeFileStreamsButRefusesWholeFileRead) {
  // A graph whose serialization exceeds the 16 MiB read_file cap: the
  // legacy path must refuse it (naming the cap and the streaming entry
  // point), the streaming path must round-trip it byte-exactly.
  dfglib::MegaConfig cfg;
  cfg.name = "big";
  cfg.operations = 260'000;
  cfg.width = 64;
  cfg.seed = 99;
  const cdfg::Graph g = dfglib::make_mega_design(cfg);
  const std::string text = cdfg::to_text(g);
  ASSERT_GT(text.size(), ReadLimits{}.max_bytes);

  const std::string path =
      (std::filesystem::temp_directory_path() / "lwm_big_stream_test.cdfg")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good());
  }

  const auto refused = read_file(path);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.diag().message.find("16777216"), std::string::npos)
      << refused.diag().message;
  EXPECT_NE(refused.diag().message.find("parse_cdfg_stream"),
            std::string::npos)
      << refused.diag().message;

  auto streamed = cdfg::read_cdfg_file(path);
  ASSERT_TRUE(streamed.ok()) << streamed.diag().to_string();
  EXPECT_EQ(cdfg::to_text(streamed.value()), text);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lwm::io
