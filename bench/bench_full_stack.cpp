// bench_full_stack — total datapath cost as protection layers stack.
//
// The paper's claim is per-task ("negligible overhead in solution
// quality"); a vendor stacks protocols, so the number that matters in
// practice is the *combined* datapath overhead: latency, functional
// units, registers, steering muxes, estimated area.  Sweeps the stack:
// none -> scheduling marks -> + register marks, at two budgets.
#include <cstdio>
#include <vector>

#include "bench_io.h"
#include "cdfg/stats.h"
#include "dfglib/synth.h"
#include "hls/datapath.h"
#include "table.h"
#include "wm/pc.h"
#include "wm/reg_constraints.h"
#include "wm/sched_constraints.h"

using namespace lwm;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv, "BENCH_full_stack.json");
  const bench::Stopwatch wall;
  std::printf("== Full-stack protection: combined datapath overhead ==\n\n");

  cdfg::Graph original =
      dfglib::make_dsp_design("stack_core", 18, args.smoke ? 100 : 300, 888);
  const crypto::Signature vendor("vendor", "full-stack-key");
  std::printf("design: %s\n\n", cdfg::compute_stats(original).to_string().c_str());

  double last_overhead_pct = 0.0;
  double last_pc = 0.0;
  const std::vector<int> budget_factors =
      args.smoke ? std::vector<int>{1} : std::vector<int>{1, 2};
  for (const int budget_factor : budget_factors) {
    const int cp = cdfg::critical_path_length(original);
    const int budget = budget_factor * cp;
    std::printf("--- control-step budget: %d (= %dx critical path) ---\n",
                budget, budget_factor);

    // Layer 0: baseline.
    hls::DatapathOptions opts0;
    opts0.latency = budget;
    opts0.filter = cdfg::EdgeFilter::specification();
    const hls::Datapath dp0 = hls::synthesize_datapath(original, opts0);

    // Layer 1: scheduling watermarks.
    cdfg::Graph marked = original;
    wm::SchedWmOptions sopts;
    sopts.domain.tau = 6;
    sopts.k = 4;
    sopts.min_edges = 2;
    sopts.epsilon = 0.3;
    const auto sched_marks = wm::embed_local_watermarks(marked, vendor, 4, sopts);
    hls::DatapathOptions opts1;
    opts1.latency = budget;
    const hls::Datapath dp1 = hls::synthesize_datapath(marked, opts1);
    const double sched_pc =
        wm::sched_pc_window_model(marked, sched_marks).log10_pc;

    // Layer 2: + register watermarks.
    const auto lifetimes = regbind::compute_lifetimes(marked, dp1.schedule);
    wm::RegWmOptions ropts;
    ropts.domain.tau = 6;
    ropts.m = 3;
    ropts.min_pairs = 2;
    const auto reg_marks =
        wm::plan_reg_watermarks(marked, lifetimes, vendor, 3, ropts);
    hls::DatapathOptions opts2 = opts1;
    opts2.reg_constraints = wm::to_binding_constraints(reg_marks);
    const hls::Datapath dp2 = hls::synthesize_datapath(marked, opts2);
    const double reg_pc = wm::log10_reg_pc(marked, lifetimes, reg_marks);

    bench::Table t({"stack", "log10 Pc", "latency", "units", "regs",
                    "mux in", "area", "area OH"});
    auto row = [&](const char* name, double pc, const hls::Datapath& dp,
                   const hls::DatapathOptions& o) {
      t.add_row({name, pc == 0.0 ? "-" : bench::fmt("%.1f", pc),
                 bench::fmt_int(dp.latency), bench::fmt_int(dp.total_units()),
                 bench::fmt_int(dp.registers), bench::fmt_int(dp.mux_inputs),
                 bench::fmt("%.1f", dp.area(o)),
                 bench::fmt("%+.2f%%", 100.0 * (dp.area(o) - dp0.area(opts0)) /
                                           dp0.area(opts0))});
    };
    row("baseline", 0.0, dp0, opts0);
    row("+ sched marks", sched_pc, dp1, opts1);
    row("+ reg marks", sched_pc + reg_pc, dp2, opts2);
    t.print();
    std::printf("\n");
    last_overhead_pct =
        100.0 * (dp2.area(opts2) - dp0.area(opts0)) / dp0.area(opts0);
    last_pc = sched_pc + reg_pc;
  }

  std::printf("shape checks:\n");
  std::printf("  * combined proof strength multiplies across layers\n");
  std::printf("  * total area overhead stays in low single digits at both "
              "budgets\n");

  bench::JsonObject json;
  json.add("bench", std::string("full_stack"));
  json.add("threads", args.threads);
  json.add("ops", static_cast<long long>(original.operation_count()));
  json.add("budgets", static_cast<long long>(budget_factors.size()));
  json.add("full_stack_area_overhead_pct", last_overhead_pct);
  json.add("full_stack_log10_pc", last_pc);
  json.add("wall_ms", wall.elapsed_ms());
  bench::attach_obs(json, args);
  return json.write(args.json_path) ? 0 : 1;
}
