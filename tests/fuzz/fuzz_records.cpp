// Fuzz target: the watermark-records parser — the artifact most likely
// to be adversarial, since the accused party supplies it in a dispute.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "wm/records_io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  (void)lwm::wm::parse_records(text, "<fuzz>");
  return 0;
}
