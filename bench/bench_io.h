// bench_io.h — shared CLI + JSON plumbing for the bench binaries.
//
// Every bench accepts `--threads N` (pool concurrency; 1 = serial),
// `--json PATH` (override the default BENCH_<name>.json), `--smoke`
// (shrink the sweep to a seconds-long sanity pass — the `bench-smoke`
// ctest label runs every bench this way), and `--trace PATH` (write a
// Chrome trace_event JSON of every span recorded during the run; needs
// a build with LWM_OBS=ON).  Each bench emits a small flat JSON object
// — wall time, thread count, and the headline counts — so successive
// PRs can chart the perf trajectory from the same artifacts.  With
// LWM_OBS=ON the object also carries the whole observability registry
// under an "obs" key (see attach_obs).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <variant>
#include <vector>

#include "io/parse_result.h"
#include "io/text.h"
#include "obs/obs.h"
#if LWM_OBS_ENABLED
#include "obs/export.h"
#endif

namespace lwm::bench {

struct Args {
  int threads = 1;
  bool smoke = false;
  std::string json_path;
  std::string trace_path;  // empty = no trace requested
};

/// Upper bound on --threads: far above any sane pool size, low enough
/// that a hostile value can't make ThreadPool try to spawn millions.
inline constexpr int kMaxThreads = 4096;

/// Pure CLI parser — no exit(), no obs side effects, so the fuzz target
/// can drive it.  The seed read `argv[++i]` for a flag's value; a flag
/// in final position made the value `argv[argc]` (NULL) and handed it
/// to atoi, and `--threads garbage` atoi'd to 0 and was silently
/// clamped — both are now located errors.  Diagnostics use the argv
/// index as the "line" (file = "<argv>").
///
/// When `passthrough` is non-null, unknown arguments are appended to it
/// instead of failing (bench_micro forwards them to google-benchmark).
inline lwm::io::ParseResult<Args> try_parse_args(
    int argc, char* const* argv, const char* default_json,
    std::vector<std::string>* passthrough = nullptr) {
  Args args;
  args.json_path = default_json;
  const auto err = [](int index, std::string msg) {
    return lwm::io::Diagnostic{"<argv>", index, 0, std::move(msg)};
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value_of = [&](const char* flag) -> lwm::io::ParseResult<std::string> {
      if (i + 1 >= argc) {
        return err(i, std::string(flag) + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (arg == "--threads") {
      auto value = value_of("--threads");
      if (!value) return value.diag();
      const auto n = lwm::io::to_int(value.value());
      if (!n || *n < 1 || *n > kMaxThreads) {
        return err(i, "--threads needs an integer in [1, " +
                          std::to_string(kMaxThreads) + "], got '" +
                          value.value() + "'");
      }
      args.threads = *n;
    } else if (arg == "--json") {
      auto value = value_of("--json");
      if (!value) return value.diag();
      args.json_path = std::move(value).value();
    } else if (arg == "--trace") {
      auto value = value_of("--trace");
      if (!value) return value.diag();
      args.trace_path = std::move(value).value();
    } else if (arg == "--smoke") {
      args.smoke = true;
    } else if (passthrough != nullptr) {
      passthrough->push_back(std::string(arg));
    } else {
      return err(i, "unknown argument: " + std::string(arg));
    }
  }
  return args;
}

inline Args parse_args(int argc, char** argv, const char* default_json) {
  auto parsed = try_parse_args(argc, argv, default_json);
  if (!parsed) {
    std::fprintf(stderr,
                 "%s: error: %s (argv[%d])\n"
                 "usage: %s [--threads N] [--json PATH] [--smoke]"
                 " [--trace PATH]\n",
                 argv[0], parsed.diag().message.c_str(), parsed.diag().line,
                 argv[0]);
    std::exit(2);
  }
  Args args = std::move(parsed).value();
#if LWM_OBS_ENABLED
  if (!args.trace_path.empty()) {
    lwm::obs::Registry::instance().enable_tracing(true);
  }
#else
  if (!args.trace_path.empty()) {
    std::fprintf(stderr,
                 "warning: --trace ignored (built with LWM_OBS=OFF)\n");
  }
#endif
  return args;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Escapes `s` for placement inside a JSON string literal: quotes,
/// backslashes, and control characters (the three classes RFC 8259
/// forbids raw).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Flat JSON object writer: numbers, strings, and pre-rendered JSON
/// values, in insertion order.
class JsonObject {
 public:
  void add(const std::string& key, double v) { fields_.emplace_back(key, v); }
  void add(const std::string& key, long long v) { fields_.emplace_back(key, v); }
  void add(const std::string& key, unsigned long long v) {
    fields_.emplace_back(key, v);
  }
  void add(const std::string& key, int v) {
    fields_.emplace_back(key, static_cast<long long>(v));
  }
  void add(const std::string& key, const std::string& v) {
    fields_.emplace_back(key, v);
  }
  /// Splices `json_text` in verbatim as the value — the caller promises
  /// it is already well-formed JSON (an object, array, or literal).
  void add_raw(const std::string& key, std::string json_text) {
    fields_.emplace_back(key, RawJson{std::move(json_text)});
  }

  /// Renders the object; exposed separately from write() so tests can
  /// round-trip the output without the filesystem.
  [[nodiscard]] std::string render() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) out += ",";
      out += "\n  \"" + json_escape(fields_[i].first) + "\": ";
      const Value& v = fields_[i].second;
      char buf[32];
      if (const auto* d = std::get_if<double>(&v)) {
        std::snprintf(buf, sizeof buf, "%.6f", *d);
        out += buf;
      } else if (const auto* ll = std::get_if<long long>(&v)) {
        std::snprintf(buf, sizeof buf, "%lld", *ll);
        out += buf;
      } else if (const auto* ull = std::get_if<unsigned long long>(&v)) {
        std::snprintf(buf, sizeof buf, "%llu", *ull);
        out += buf;
      } else if (const auto* raw = std::get_if<RawJson>(&v)) {
        out += raw->text;
      } else {
        out += "\"" + json_escape(std::get<std::string>(v)) + "\"";
      }
    }
    out += "\n}\n";
    return out;
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    const std::string out = render();
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct RawJson {
    std::string text;
  };
  using Value =
      std::variant<double, long long, unsigned long long, std::string, RawJson>;
  std::vector<std::pair<std::string, Value>> fields_;
};

/// End-of-run observability hook, called by every bench just before
/// json.write(): merges the counter/histogram/span registry into the
/// bench JSON under "obs", and writes the Chrome trace if --trace was
/// given.  Compiled with LWM_OBS=OFF this is a no-op, so the bench JSON
/// is byte-identical to the pre-observability output.
inline void attach_obs(JsonObject& json, const Args& args) {
#if LWM_OBS_ENABLED
  json.add_raw("obs", lwm::obs::registry_json());
  if (!args.trace_path.empty()) {
    lwm::obs::write_chrome_trace(args.trace_path);
  }
#else
  (void)json;
  (void)args;
#endif
}

}  // namespace lwm::bench
