#include "cdfg/delay_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cdfg/analysis.h"
#include "cdfg/builder.h"
#include "cdfg/serialize.h"
#include "cdfg/timing_cache.h"
#include "cdfg/validate.h"
#include "dfglib/iir4.h"
#include "dfglib/kernels.h"

namespace lwm::cdfg {
namespace {

Graph chain3() {
  Builder b("chain3");
  const NodeId in = b.input("in");
  const NodeId a = b.op(OpKind::kAdd, "a", {in, in});
  const NodeId m = b.op(OpKind::kMul, "m", {a, a});
  const NodeId c = b.op(OpKind::kAdd, "c", {m, in});
  b.output("out", c);
  return std::move(b).build();
}

TEST(DelayModelTest, DefaultConstructedIsExact) {
  const DelayModel m;
  EXPECT_TRUE(m.is_exact());
  EXPECT_EQ(m.describe(), "exact");
  for (int i = 0; i < kNumOpKinds; ++i) {
    const auto k = static_cast<OpKind>(i);
    const DelayBounds b = m.bounds(k, /*fanout=*/100);
    EXPECT_TRUE(b.exact()) << op_name(k);
    EXPECT_EQ(b.max, default_delay(k)) << op_name(k);
  }
}

TEST(DelayModelTest, ExactAnnotateIsIdentity) {
  Graph g = dfglib::iir4_parallel();
  const std::string before = to_text(g);
  EXPECT_EQ(DelayModel::exact().annotate(g), 0);
  EXPECT_EQ(to_text(g), before);
  EXPECT_FALSE(g.has_bounded_delays());
}

TEST(DelayModelTest, DynoBoundsAreOrderedAndWiden) {
  const DelayModel m = DelayModel::dyno(16);
  EXPECT_FALSE(m.is_exact());
  EXPECT_EQ(m.describe(), "table(bits=16,fo>4)");
  for (int i = 0; i < kNumOpKinds; ++i) {
    const auto k = static_cast<OpKind>(i);
    const DelayBounds b = m.bounds(k);
    EXPECT_LE(0, b.min) << op_name(k);
    EXPECT_LE(b.min, b.max) << op_name(k);
  }
  // ilog2(16) = 4: carry ops gain [2, 4], tree ops [4, 8] on the base.
  EXPECT_EQ(m.bounds(OpKind::kAdd), (DelayBounds{3, 5}));
  EXPECT_EQ(m.bounds(OpKind::kMul), (DelayBounds{6, 10}));
  // Logic stays exact and width-independent.
  EXPECT_EQ(m.bounds(OpKind::kAnd), (DelayBounds{1, 1}));
  // Pseudo-ops never gain width terms.
  EXPECT_EQ(m.bounds(OpKind::kInput), (DelayBounds{0, 0}));
}

TEST(DelayModelTest, FanoutTermHitsWorstCaseOnly) {
  const DelayModel m = DelayModel::dyno(16);
  const DelayBounds narrow = m.bounds(OpKind::kAdd, /*fanout=*/4);
  const DelayBounds wide = m.bounds(OpKind::kAdd, /*fanout=*/8);
  EXPECT_EQ(narrow, m.bounds(OpKind::kAdd));  // at the threshold: no term
  EXPECT_EQ(wide.min, narrow.min);
  EXPECT_EQ(wide.max, narrow.max + 3);  // ilog2(8)
}

TEST(DelayModelTest, SettersValidate) {
  DelayModel m;
  EXPECT_THROW(m.set_base(OpKind::kAdd, -1, 2), std::invalid_argument);
  EXPECT_THROW(m.set_base(OpKind::kAdd, 3, 2), std::invalid_argument);
  EXPECT_THROW(m.set_bit_width(-1), std::invalid_argument);
  EXPECT_THROW(m.set_fanout_threshold(-1), std::invalid_argument);
  EXPECT_THROW(DelayModel::dyno(0), std::invalid_argument);
  m.set_base(OpKind::kAdd, 1, 4);
  EXPECT_FALSE(m.is_exact());  // overridden table is no longer provably exact
}

TEST(DelayModelTest, AnnotateWritesBoundsAndReportsChanges) {
  Graph g = chain3();
  const DelayModel m = DelayModel::dyno(16);
  const int changed = m.annotate(g);
  EXPECT_GT(changed, 0);
  EXPECT_TRUE(g.has_bounded_delays());
  for (NodeId n : g.node_ids()) {
    const Node& node = g.node(n);
    const DelayBounds b =
        m.bounds(node.kind, static_cast<int>(g.fanout(n).size()));
    EXPECT_EQ(node.delay_min, b.min) << node.name;
    EXPECT_EQ(node.delay, b.max) << node.name;
  }
  // Re-annotating with the same model is now a no-op.
  EXPECT_EQ(m.annotate(g), 0);
  EXPECT_TRUE(validate(g).empty());
}

TEST(DelayModelTest, GraphRejectsMalformedBounds) {
  Graph g = chain3();
  const NodeId a = g.find("a");
  EXPECT_THROW(g.set_delay_bounds(a, -1, 2), std::invalid_argument);
  EXPECT_THROW(g.set_delay_bounds(a, 3, 2), std::invalid_argument);
  g.set_delay_bounds(a, 1, 3);
  EXPECT_TRUE(g.node(a).bounded_delay());
  EXPECT_TRUE(g.has_bounded_delays());
}

TEST(DelayModelTest, BoundedTimingBracketsPessimistic) {
  Graph g = dfglib::make_fir(16);
  DelayModel::dyno(8).annotate(g);
  const BoundedTimingInfo t = compute_timing_bounded(g);
  EXPECT_LE(t.critical_path_min, t.pess.critical_path);
  for (NodeId n : g.node_ids()) {
    EXPECT_LE(t.asap_min[n.value], t.pess.asap[n.value]) << g.node(n).name;
    EXPECT_GE(t.alap_min[n.value], t.pess.alap[n.value]) << g.node(n).name;
    EXPECT_GE(t.window_widening(n), 0) << g.node(n).name;
  }
}

TEST(DelayModelTest, BoundedTimingCoincidesOnExactGraphs) {
  const Graph g = dfglib::iir4_parallel();
  const BoundedTimingInfo t = compute_timing_bounded(g);
  EXPECT_EQ(t.critical_path_min, t.pess.critical_path);
  for (NodeId n : g.node_ids()) {
    EXPECT_EQ(t.asap_min[n.value], t.pess.asap[n.value]);
    EXPECT_EQ(t.alap_min[n.value], t.pess.alap[n.value]);
    EXPECT_EQ(t.window_widening(n), 0);
  }
}

TEST(DelayModelTest, TimingCacheExposesOptimisticWindows) {
  Graph g = dfglib::make_fir(16);
  DelayModel::dyno(8).annotate(g);
  const TimingCache cache(g);
  EXPECT_TRUE(cache.bounded());
  const BoundedTimingInfo t = compute_timing_bounded(g, cache.latency());
  EXPECT_EQ(cache.critical_path_min(), t.critical_path_min);
  for (NodeId n : g.node_ids()) {
    EXPECT_EQ(cache.lo_min(n), t.asap_min[n.value]) << g.node(n).name;
    EXPECT_EQ(cache.hi_min(n), t.alap_min[n.value]) << g.node(n).name;
  }
}

TEST(DelayModelTest, AnnotatedGraphRoundTripsThroughText) {
  Graph g = dfglib::make_fir(16);
  DelayModel::dyno(8).annotate(g);
  const Graph h = from_text(to_text(g));
  for (NodeId n : g.node_ids()) {
    const NodeId hn = h.find(g.node(n).name);
    EXPECT_EQ(h.node(hn).delay, g.node(n).delay) << g.node(n).name;
    EXPECT_EQ(h.node(hn).delay_min, g.node(n).delay_min) << g.node(n).name;
  }
}

}  // namespace
}  // namespace lwm::cdfg
