// tm_constraints.h — constraint encoding for template matching
// (paper Fig. 5).
//
// The watermark *forces* Z signature-chosen node-to-module matchings to
// appear in the final template-matching solution.  Each chosen matching
// is isolated by promoting the variables on its boundary to pseudo-
// primary outputs (PPOs): a PPO value must stay visible, so no other
// multi-operation module can swallow the neighborhood, and the enforced
// matching survives the optimization pass untouched.
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "cdfg/graph.h"
#include "crypto/signature.h"
#include "tmatch/cover.h"
#include "tmatch/matcher.h"
#include "wm/domain.h"

namespace lwm::wm {

struct TmWmOptions {
  int z = 3;              ///< enforced matchings (Z); the tradeoff knob
  double epsilon = 0.25;  ///< near-critical exclusion margin
  /// Available control steps; the near-critical exclusion keeps nodes
  /// with laxity <= budget * (1 - epsilon).  -1 means "critical path"
  /// (the tightest schedule, Fig. 5's literal C).  Table II's second row
  /// per design doubles this.
  int budget = -1;
  /// If set, the protocol restricts enforcement to the signature-carved
  /// subtree of this root; invalid NodeId means T = CDFG (the paper's
  /// Table II configuration).
  cdfg::NodeId subtree_root;
  DomainKey domain;
  static constexpr const char* kSelectTag = "lwm/tm-match";
};

/// The designer's record of a template-matching watermark.
struct TmWatermark {
  TmWmOptions options;
  std::vector<tmatch::Match> enforced;     ///< the Z forced matchings
  std::unordered_set<cdfg::NodeId> ppos;   ///< promoted boundary variables
};

/// Runs the Fig. 5 encoding loop on `g`.  Returns nullopt when fewer
/// enforceable matchings exist than Z requires and none could be chosen.
[[nodiscard]] std::optional<TmWatermark> plan_tm_watermark(
    const cdfg::Graph& g, const tmatch::TemplateLibrary& lib,
    const crypto::Signature& sig, const TmWmOptions& opts);

/// Convenience: CoverOptions carrying the watermark into greedy_cover().
[[nodiscard]] tmatch::CoverOptions cover_options(const TmWatermark& wm);

}  // namespace lwm::wm
