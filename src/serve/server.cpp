#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/obs.h"

namespace lwm::serve {

namespace {

/// Polls `fd` for `events` up to `deadline_ms`, in 500 ms slices so the
/// caller's stop flag is observed promptly.  Returns +1 ready, 0 timed
/// out, -1 socket error/stop.
int poll_sliced(int fd, short events, int deadline_ms,
                const std::atomic<bool>* stop) {
  int waited = 0;
  while (true) {
    if (stop != nullptr && stop->load(std::memory_order_acquire)) return -1;
    const int slice =
        deadline_ms < 0 ? 500 : std::min(500, deadline_ms - waited);
    if (deadline_ms >= 0 && slice <= 0) return 0;
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, slice);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc > 0) {
      if (p.revents & (POLLERR | POLLNVAL)) return -1;
      return 1;
    }
    waited += slice;
  }
}

/// Writes all of `bytes`, polling before each send.  False on timeout,
/// peer reset, or stop.
bool write_all(int fd, std::string_view bytes, int timeout_ms,
               const std::atomic<bool>* stop) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const int ready = poll_sliced(fd, POLLOUT, timeout_ms, stop);
    if (ready <= 0) return false;
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_frame(int fd, const Frame& f, int timeout_ms,
                const std::atomic<bool>* stop) {
  return write_all(fd, encode_frame(f), timeout_ms, stop);
}

/// Graceful refusal: half-close the write side and drain whatever the
/// peer already sent before closing.  Closing with unread bytes in the
/// receive queue would RST the connection and discard the error frame
/// we just queued — the peer would see a reset instead of the reason.
void drain_then_close(int fd, int timeout_ms, const std::atomic<bool>* stop) {
  ::shutdown(fd, SHUT_WR);
  char sink[4096];
  while (poll_sliced(fd, POLLIN, timeout_ms, stop) > 0) {
    const ssize_t n = ::recv(fd, sink, sizeof sink, 0);
    if (n <= 0) break;
  }
  ::close(fd);
}

bool bind_path_fits(const std::string& path) {
  sockaddr_un addr{};
  return path.size() < sizeof addr.sun_path;
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), service_(opts_.service) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running_.load(std::memory_order_acquire)) {
    return fail("server already running");
  }
  if (opts_.socket_path.empty()) return fail("socket path is empty");
  if (!bind_path_fits(opts_.socket_path)) {
    return fail("socket path too long for sun_path");
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return fail(std::string("socket(): ") + std::strerror(errno));
  }
  ::unlink(opts_.socket_path.c_str());  // stale file from a dead daemon
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return fail(std::string("bind(") + opts_.socket_path +
                "): " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return fail(std::string("listen(): ") + std::strerror(errno));
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the accept thread with shutdown() only; closing (and writing
  // listen_fd_) must wait until after the join — the accept loop reads
  // the fd concurrently until then.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard lock(conns_mutex_);
    for (const auto& c : conns_) {
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
    }
  }
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard lock(conns_mutex_);
    conns.swap(conns_);
  }
  for (const auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
    if (c->fd >= 0) ::close(c->fd);
  }
  ::unlink(opts_.socket_path.c_str());
}

void Server::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      if ((*it)->fd >= 0) ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int ready = poll_sliced(listen_fd_, POLLIN, -1, &stopping_);
    if (ready <= 0) break;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;  // listener closed (stop) or unrecoverable
    }
    std::lock_guard lock(conns_mutex_);
    reap_finished_locked();
    if (static_cast<int>(conns_.size()) >= opts_.max_connections) {
      // Over the connection cap: shed at accept with an error frame so
      // the client learns why instead of seeing a silent reset.
      (void)send_frame(fd,
                       make_error_frame(ErrorInfo{
                           kErrShed,
                           {"<serve>", 0, 0, "connection limit reached"}}),
                       1000, &stopping_);
      // Short drain cap: this runs on the accept thread, so a peer
      // that never closes must not stall new connections for long.
      drain_then_close(fd, 250, &stopping_);
      LWM_COUNT("serve/conns_shed", 1);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { connection_loop(raw); });
    conns_.push_back(std::move(conn));
    LWM_COUNT("serve/conns_accepted", 1);
  }
}

void Server::connection_loop(Connection* conn) {
  const int fd = conn->fd;
  std::string buffer;
  char chunk[64 * 1024];
  bool alive = true;
  while (alive && !stopping_.load(std::memory_order_acquire)) {
    // Drain every complete frame already buffered before reading more.
    while (alive) {
      const DecodeResult d = decode_frame(buffer, "<socket>");
      if (d.status == DecodeResult::Status::kNeedMore) break;
      if (d.status == DecodeResult::Status::kError) {
        (void)send_frame(fd, make_error_frame(ErrorInfo{kErrBadFrame, d.diag}),
                         opts_.io_timeout_ms, &stopping_);
        alive = false;  // framing lost; cannot resynchronize
        break;
      }
      buffer.erase(0, d.consumed);
      Frame response;
      const int inflight = in_flight_.fetch_add(1, std::memory_order_acq_rel);
      if (inflight >= opts_.max_in_flight) {
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        LWM_COUNT("serve/reqs_shed", 1);
        response = make_error_frame(ErrorInfo{
            kErrShed, {"<serve>", 0, 0, "in-flight request limit reached"}});
      } else {
        response = service_.handle(d.frame);
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      }
      if (!send_frame(fd, response, opts_.io_timeout_ms, &stopping_)) {
        alive = false;
      }
    }
    if (!alive) break;

    const int ready = poll_sliced(fd, POLLIN, opts_.io_timeout_ms, &stopping_);
    if (ready < 0) break;
    if (ready == 0) {
      if (!buffer.empty()) {
        // Stalled mid-frame: tell the peer before hanging up.
        (void)send_frame(
            fd,
            make_error_frame(ErrorInfo{
                kErrTimeout, {"<socket>", 0, 0, "read timed out mid-frame"}}),
            1000, &stopping_);
      }
      break;  // idle past the deadline: close quietly
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      break;  // peer closed or errored
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

// --- Client -------------------------------------------------------------

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Client Client::connect(const std::string& socket_path, std::string* error) {
  Client c;
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    c.close();
    return std::move(c);
  };
  if (!bind_path_fits(socket_path)) {
    return fail("socket path too long for sun_path");
  }
  c.fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (c.fd_ < 0) return fail(std::string("socket(): ") + std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
  if (::connect(c.fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    return fail(std::string("connect(") + socket_path +
                "): " + std::strerror(errno));
  }
  return c;
}

std::optional<Frame> Client::call(const Frame& request, int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  if (!write_all(fd_, encode_frame(request), timeout_ms, nullptr)) {
    close();
    return std::nullopt;
  }
  char chunk[64 * 1024];
  while (true) {
    const DecodeResult d = decode_frame(buffer_, "<socket>");
    if (d.status == DecodeResult::Status::kOk) {
      buffer_.erase(0, d.consumed);
      return d.frame;
    }
    if (d.status == DecodeResult::Status::kError) {
      close();
      return std::nullopt;
    }
    const int ready = poll_sliced(fd_, POLLIN, timeout_ms, nullptr);
    if (ready <= 0) {
      close();
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      close();
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace lwm::serve
