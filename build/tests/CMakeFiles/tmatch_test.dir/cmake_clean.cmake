file(REMOVE_RECURSE
  "CMakeFiles/tmatch_test.dir/tmatch/cover_test.cpp.o"
  "CMakeFiles/tmatch_test.dir/tmatch/cover_test.cpp.o.d"
  "CMakeFiles/tmatch_test.dir/tmatch/exact_cover_test.cpp.o"
  "CMakeFiles/tmatch_test.dir/tmatch/exact_cover_test.cpp.o.d"
  "CMakeFiles/tmatch_test.dir/tmatch/library_io_test.cpp.o"
  "CMakeFiles/tmatch_test.dir/tmatch/library_io_test.cpp.o.d"
  "CMakeFiles/tmatch_test.dir/tmatch/matcher_test.cpp.o"
  "CMakeFiles/tmatch_test.dir/tmatch/matcher_test.cpp.o.d"
  "CMakeFiles/tmatch_test.dir/tmatch/template_lib_test.cpp.o"
  "CMakeFiles/tmatch_test.dir/tmatch/template_lib_test.cpp.o.d"
  "tmatch_test"
  "tmatch_test.pdb"
  "tmatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
