#include "cdfg/graph.h"

#include <gtest/gtest.h>

#include "cdfg/builder.h"

namespace lwm::cdfg {
namespace {

Graph diamond() {
  // in -> a -> (b, c) -> d -> out
  Builder b("diamond");
  const NodeId in = b.input("in");
  const NodeId a = b.op(OpKind::kAdd, "a", {in, in});
  const NodeId x = b.op(OpKind::kMul, "b", {a});
  const NodeId y = b.op(OpKind::kShift, "c", {a});
  const NodeId d = b.op(OpKind::kAdd, "d", {x, y});
  b.output("out", d);
  return std::move(b).build();
}

TEST(GraphTest, CountsAndLookup) {
  const Graph g = diamond();
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_EQ(g.operation_count(), 4u);
  EXPECT_EQ(g.edge_count(), 7u);
  EXPECT_TRUE(g.find("a").valid());
  EXPECT_FALSE(g.find("nope").valid());
  EXPECT_EQ(g.node(g.find("b")).kind, OpKind::kMul);
}

TEST(GraphTest, AutoNamesAreUnique) {
  Graph g("auto");
  const NodeId a = g.add_node(OpKind::kAdd);
  const NodeId b = g.add_node(OpKind::kAdd);
  EXPECT_NE(g.node(a).name, g.node(b).name);
}

TEST(GraphTest, FaninPreservesInsertionOrder) {
  Graph g("order");
  const NodeId i1 = g.add_node(OpKind::kInput, "i1");
  const NodeId i2 = g.add_node(OpKind::kInput, "i2");
  const NodeId i3 = g.add_node(OpKind::kInput, "i3");
  const NodeId a = g.add_node(OpKind::kAdd, "a");
  g.add_edge(i2, a);
  g.add_edge(i3, a);
  g.add_edge(i1, a);
  const auto fin = g.fanin(a);
  ASSERT_EQ(fin.size(), 3u);
  EXPECT_EQ(g.edge(fin[0]).src, i2);
  EXPECT_EQ(g.edge(fin[1]).src, i3);
  EXPECT_EQ(g.edge(fin[2]).src, i1);
}

TEST(GraphTest, SelfLoopRejected) {
  Graph g("self");
  const NodeId a = g.add_node(OpKind::kAdd, "a");
  EXPECT_THROW(g.add_edge(a, a), std::invalid_argument);
}

TEST(GraphTest, RemoveEdgeUpdatesAdjacency) {
  Graph g("rm");
  const NodeId a = g.add_node(OpKind::kAdd, "a");
  const NodeId b = g.add_node(OpKind::kAdd, "b");
  const EdgeId e = g.add_edge(a, b);
  EXPECT_EQ(g.fanout(a).size(), 1u);
  g.remove_edge(e);
  EXPECT_EQ(g.fanout(a).size(), 0u);
  EXPECT_EQ(g.fanin(b).size(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.is_live(e));
  EXPECT_THROW(g.edge(e), std::out_of_range);
}

TEST(GraphTest, RemoveNodeRemovesIncidentEdges) {
  Graph g = diamond();
  const NodeId a = g.find("a");
  g.remove_node(a);
  EXPECT_FALSE(g.is_live(a));
  EXPECT_EQ(g.node_count(), 5u);
  // a had 2 in + 2 out edges.
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.fanin(g.find("b")).size(), 0u);
}

TEST(GraphTest, NodeIdsStableAcrossRemoval) {
  Graph g = diamond();
  const NodeId d = g.find("d");
  g.remove_node(g.find("b"));
  EXPECT_EQ(g.node(d).name, "d");  // handle still resolves
}

TEST(GraphTest, StripTemporalEdges) {
  Graph g = diamond();
  const NodeId b = g.find("b");
  const NodeId c = g.find("c");
  g.add_edge(b, c, EdgeKind::kTemporal);
  EXPECT_TRUE(g.has_edge(b, c, EdgeKind::kTemporal));
  EXPECT_EQ(g.strip_temporal_edges(), 1);
  EXPECT_FALSE(g.has_edge(b, c, EdgeKind::kTemporal));
  EXPECT_EQ(g.strip_temporal_edges(), 0) << "idempotent";
}

TEST(GraphTest, EdgesOfKind) {
  Graph g = diamond();
  g.add_edge(g.find("b"), g.find("c"), EdgeKind::kTemporal);
  EXPECT_EQ(g.edges_of_kind(EdgeKind::kTemporal).size(), 1u);
  EXPECT_EQ(g.edges_of_kind(EdgeKind::kData).size(), 7u);
  EXPECT_EQ(g.edges_of_kind(EdgeKind::kControl).size(), 0u);
}

TEST(GraphTest, HasEdgeIsKindSpecific) {
  Graph g = diamond();
  const NodeId a = g.find("a");
  const NodeId b = g.find("b");
  EXPECT_TRUE(g.has_edge(a, b, EdgeKind::kData));
  EXPECT_FALSE(g.has_edge(a, b, EdgeKind::kTemporal));
  EXPECT_FALSE(g.has_edge(b, a, EdgeKind::kData)) << "direction matters";
}

TEST(GraphTest, ParallelEdgesAllowed) {
  Graph g("par");
  const NodeId i = g.add_node(OpKind::kInput, "i");
  const NodeId a = g.add_node(OpKind::kAdd, "a");
  g.add_edge(i, a);
  g.add_edge(i, a);  // a = i + i
  EXPECT_EQ(g.fanin(a).size(), 2u);
}

TEST(GraphTest, DeadHandleAccessThrows) {
  Graph g("dead");
  EXPECT_THROW(g.node(NodeId{0}), std::out_of_range);
  EXPECT_THROW(g.fanin(NodeId{7}), std::out_of_range);
  EXPECT_THROW((void)g.add_edge(NodeId{0}, NodeId{1}), std::out_of_range);
}

TEST(GraphTest, CopySemanticsAreDeep) {
  Graph g = diamond();
  Graph copy = g;
  copy.remove_node(copy.find("b"));
  EXPECT_TRUE(g.find("b").valid());
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_EQ(copy.node_count(), 5u);
}

}  // namespace
}  // namespace lwm::cdfg
