#!/usr/bin/env bash
# Guard for the LWM_OBS=OFF contract: with LWM_OBS_ENABLED=0 the macros
# must compile to nothing — no symbol from namespace lwm::obs may appear
# in the object code, even at -O0 (so it is the preprocessor doing the
# erasing, not the optimizer).  Compiles a probe translation unit that
# uses every macro and greps the mangled namespace prefix out of `nm`.
#
# Usage: check_obs_off.sh <c++-compiler> <repo-root> <scratch-dir>
set -eu

CXX="$1"
SRC_DIR="$2"
OUT_DIR="$3"

probe="$OUT_DIR/obs_off_probe.cpp"
obj="$OUT_DIR/obs_off_probe.o"

cat > "$probe" <<'EOF'
#define LWM_OBS_ENABLED 0
#include "obs/obs.h"

int probe_work(int n) {
  LWM_SPAN("probe/span");
  long long total = 0;
  for (int i = 0; i < n; ++i) {
    LWM_COUNT("probe/count", 1);
    LWM_HIST("probe/hist", i);
    total += i;
  }
  return static_cast<int>(total & 0x7fffffff);
}
EOF

"$CXX" -std=c++20 -O0 -c "$probe" -I "$SRC_DIR/src" -o "$obj"

# Itanium mangling: every lwm::obs symbol contains the nested-name
# fragment "3lwm3obs".
if nm "$obj" | grep "3lwm3obs"; then
  echo "FAIL: lwm::obs symbols survive an LWM_OBS_ENABLED=0 compile" >&2
  exit 1
fi

echo "PASS: LWM_OBS=OFF compiles the obs macros to nothing"
