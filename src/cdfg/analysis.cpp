#include "cdfg/analysis.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <stdexcept>

namespace lwm::cdfg {

std::vector<NodeId> topo_order(const Graph& g, EdgeFilter filter) {
  const std::size_t cap = g.node_capacity();
  std::vector<int> indegree(cap, 0);
  for (NodeId n : g.nodes()) {
    for (EdgeId e : g.fanin(n)) {
      if (filter.accepts(g.edge(e))) ++indegree[n.value];
    }
  }
  std::deque<NodeId> ready;
  for (NodeId n : g.nodes()) {
    if (indegree[n.value] == 0) ready.push_back(n);
  }
  std::vector<NodeId> order;
  order.reserve(g.node_count());
  while (!ready.empty()) {
    const NodeId n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (EdgeId e : g.fanout(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed)) continue;
      if (--indegree[ed.dst.value] == 0) ready.push_back(ed.dst);
    }
  }
  if (order.size() != g.node_count()) {
    // Name a concrete cycle so the offending (back-)edge is identifiable
    // from logs: a bare "is cyclic" on a 1M-node design is undebuggable.
    const CycleInfo cycle = find_cycle(g, filter);
    std::string msg = "topo_order: precedence relation is cyclic in '" +
                      g.name() + "'";
    if (cycle.found()) msg += ": " + cycle.describe(g);
    throw std::runtime_error(msg);
  }
  return order;
}

std::string CycleInfo::describe(const Graph& g) const {
  if (nodes.empty()) return "(acyclic)";
  constexpr std::size_t kMaxNamed = 8;
  std::string out = "cycle [";
  const std::size_t shown = std::min(nodes.size(), kMaxNamed);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i != 0) out += " -> ";
    out += g.node(nodes[i]).name;
  }
  if (nodes.size() > kMaxNamed) {
    out += " -> ... (" + std::to_string(nodes.size() - kMaxNamed) + " more)";
  }
  out += " -> " + g.node(nodes.front()).name + "]";
  return out;
}

CycleInfo find_cycle(const Graph& g, EdgeFilter filter) {
  // Iterative DFS with tri-color marking; when a gray node is re-entered
  // the gray stack from that node onward is the cycle.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(g.node_capacity(), kWhite);
  struct Frame {
    NodeId node;
    std::size_t next = 0;       // index into fanout(node)
    EdgeId via;                 // edge that entered this frame
  };
  std::vector<Frame> stack;
  CycleInfo cycle;
  for (NodeId root : g.nodes()) {
    if (color[root.value] != kWhite) continue;
    stack.push_back(Frame{root, 0, EdgeId{}});
    color[root.value] = kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const std::span<const EdgeId> out = g.fanout(f.node);
      bool descended = false;
      while (f.next < out.size()) {
        const EdgeId e = out[f.next++];
        const Edge& ed = g.edge(e);
        if (!filter.accepts(ed)) continue;
        if (color[ed.dst.value] == kGray) {
          // Found: unwind the gray stack back to ed.dst's own frame —
          // the cycle entry itself, not the frame after it (dropping
          // the entry truncated every reported cycle by one node and
          // rendered a 2-cycle as a bogus self-loop).
          std::size_t start = stack.size();
          while (start > 0 && stack[start - 1].node != ed.dst) --start;
          for (std::size_t i = start - 1; i < stack.size(); ++i) {
            cycle.nodes.push_back(stack[i].node);
            if (i + 1 < stack.size()) cycle.edges.push_back(stack[i + 1].via);
          }
          cycle.edges.push_back(e);  // closing edge back to nodes[0]
          // The closing edge is last and nodes[0] is the cycle entry
          // (ed.dst) by construction.
          return cycle;
        }
        if (color[ed.dst.value] == kWhite) {
          color[ed.dst.value] = kGray;
          stack.push_back(Frame{ed.dst, 0, e});
          descended = true;
          break;
        }
      }
      if (!descended) {
        color[f.node.value] = kBlack;
        stack.pop_back();
      }
    }
  }
  return cycle;
}

TimingInfo compute_timing(const Graph& g, int latency, EdgeFilter filter) {
  const std::size_t cap = g.node_capacity();
  TimingInfo t;
  t.asap.assign(cap, -1);
  t.alap.assign(cap, -1);

  const std::vector<NodeId> order = topo_order(g, filter);

  // ASAP: forward longest path.
  int cp = 0;
  for (NodeId n : order) {
    int start = 0;
    for (EdgeId e : g.fanin(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed)) continue;
      const NodeId p = ed.src;
      start = std::max(start, t.asap[p.value] + g.node(p).delay);
    }
    t.asap[n.value] = start;
    cp = std::max(cp, start + g.node(n).delay);
  }
  t.critical_path = cp;

  if (latency < 0) {
    latency = cp;
  } else if (latency < cp) {
    throw std::invalid_argument(
        "compute_timing: latency " + std::to_string(latency) +
        " below critical path " + std::to_string(cp) + " in '" + g.name() + "'");
  }
  t.latency = latency;

  // ALAP: backward longest path against the latency bound.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    int latest = latency - g.node(n).delay;
    for (EdgeId e : g.fanout(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed)) continue;
      latest = std::min(latest, t.alap[ed.dst.value] - g.node(n).delay);
    }
    t.alap[n.value] = latest;
  }
  return t;
}

int critical_path_length(const Graph& g, EdgeFilter filter) {
  return compute_timing(g, -1, filter).critical_path;
}

BoundedTimingInfo compute_timing_bounded(const Graph& g, int latency,
                                         EdgeFilter filter) {
  BoundedTimingInfo t;
  t.pess = compute_timing(g, latency, filter);  // validates the latency bound

  const std::size_t cap = g.node_capacity();
  t.asap_min.assign(cap, -1);
  t.alap_min.assign(cap, -1);

  const std::vector<NodeId> order = topo_order(g, filter);

  // Optimistic ASAP: forward longest path with every delay at d_min.
  int cp = 0;
  for (NodeId n : order) {
    int start = 0;
    for (EdgeId e : g.fanin(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed)) continue;
      const NodeId p = ed.src;
      start = std::max(start, t.asap_min[p.value] + g.node(p).delay_min);
    }
    t.asap_min[n.value] = start;
    cp = std::max(cp, start + g.node(n).delay_min);
  }
  t.critical_path_min = cp;

  // Optimistic ALAP against the same (pessimistic) latency bound: the
  // latest n could start and still finish by t.pess.latency if every
  // downstream delay realizes at its lower bound.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    int latest = t.pess.latency - g.node(n).delay_min;
    for (EdgeId e : g.fanout(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed)) continue;
      latest = std::min(latest, t.alap_min[ed.dst.value] - g.node(n).delay_min);
    }
    t.alap_min[n.value] = latest;
  }
  return t;
}

std::vector<ConeNode> fanin_cone(const Graph& g, NodeId root, int max_distance,
                                 EdgeFilter filter) {
  if (!g.is_live(root)) {
    throw std::out_of_range("fanin_cone: dead root node");
  }
  // Distances live in a hash map sized to the cone, not a dense O(V)
  // array: a bounded cone is tiny, and detection carves one cone per
  // scanned root — an O(node_capacity) zero-fill per carve is minutes of
  // pure memset on a 1M-node design.
  std::unordered_map<std::uint32_t, int> dist;
  std::deque<NodeId> queue;
  dist.emplace(root.value, 0);
  queue.push_back(root);
  std::vector<ConeNode> cone;
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    const int dn = dist.at(n.value);
    cone.push_back(ConeNode{n, dn});
    if (max_distance >= 0 && dn >= max_distance) continue;
    for (EdgeId e : g.fanin(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed)) continue;
      if (dist.emplace(ed.src.value, dn + 1).second) {
        queue.push_back(ed.src);
      }
    }
  }
  // BFS already yields nondecreasing distance; make (distance, id) exact.
  std::sort(cone.begin(), cone.end(), [](const ConeNode& a, const ConeNode& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.node < b.node;
  });
  return cone;
}

int cone_cardinality(const Graph& g, NodeId n, int x, EdgeFilter filter) {
  const auto cone = fanin_cone(g, n, x, filter);
  return static_cast<int>(cone.size()) - 1;  // exclude n itself
}

long long cone_functional_sum(const Graph& g, NodeId n, int x, EdgeFilter filter) {
  long long sum = 0;
  for (const ConeNode& c : fanin_cone(g, n, x, filter)) {
    sum += functional_id(g.node(c.node).kind);
  }
  return sum;
}

std::vector<int> levels_from(const Graph& g, NodeId root, EdgeFilter filter) {
  if (!g.is_live(root)) {
    throw std::out_of_range("levels_from: dead root node");
  }
  // Longest path over fan-in edges from root: process nodes in reverse
  // topological order (fan-in direction follows edges backwards, so a
  // node's level depends on its fan-out side nodes' levels).
  std::vector<int> level(g.node_capacity(), -1);
  level[root.value] = 0;
  const std::vector<NodeId> order = topo_order(g, filter);
  // Walk from sinks toward sources: reverse topological order guarantees
  // that when we visit n, every consumer of n is finalized.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    for (EdgeId e : g.fanout(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed)) continue;
      if (level[ed.dst.value] >= 0) {
        level[n.value] = std::max(level[n.value], level[ed.dst.value] + 1);
      }
    }
  }
  return level;
}

bool reaches(const Graph& g, NodeId src, NodeId dst, EdgeFilter filter) {
  if (!g.is_live(src) || !g.is_live(dst)) return false;
  if (src == dst) return true;
  std::vector<bool> seen(g.node_capacity(), false);
  std::deque<NodeId> queue{src};
  seen[src.value] = true;
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    for (EdgeId e : g.fanout(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed) || seen[ed.dst.value]) continue;
      if (ed.dst == dst) return true;
      seen[ed.dst.value] = true;
      queue.push_back(ed.dst);
    }
  }
  return false;
}

}  // namespace lwm::cdfg
