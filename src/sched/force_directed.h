// force_directed.h — time-constrained force-directed scheduling.
//
// Paulin & Knight's FDS (IEEE TCAD 1989) — the heuristic scheduler the
// paper cites as the representative approach [14].  Given a latency
// bound, FDS places one operation per iteration at the control step with
// the lowest "force", balancing the expected concurrency of each
// functional-unit class and thereby minimizing the resource (module)
// count.  It honors temporal watermark edges like any other precedence,
// which is exactly how the watermarking protocol stays transparent to the
// synthesis tool.
//
// Two implementations share this interface:
//   * force_directed_schedule() — the incremental engine: windows come
//     from a cdfg::TimingCache (only the pinned cone re-relaxed per
//     iteration) and per-node force vectors are cached across iterations,
//     recomputed — optionally in parallel — only when the last placement
//     touched the node's window, a neighbor's window, or the distribution
//     graph inside the steps the node reads.  Bit-identical to the
//     reference at every thread count.
//   * force_directed_schedule_reference() — the original from-scratch
//     O(iterations x nodes x steps) loop, kept as the equivalence oracle
//     for tests and the baseline for benchmarks.
#pragma once

#include <cstdint>

#include "cdfg/analysis.h"
#include "cdfg/graph.h"
#include "sched/schedule.h"

namespace lwm::exec {
class ThreadPool;
}  // namespace lwm::exec

namespace lwm::sched {

/// Work counters of one force_directed_schedule() run, reported through
/// FdsOptions::stats.  Obs-independent: tests and benches read these even
/// when the build compiles LWM_OBS out.
struct FdsStats {
  std::uint64_t refills = 0;     ///< force vectors recomputed
  std::uint64_t cache_hits = 0;  ///< force vectors reused as-is
  std::uint64_t suppressed = 0;  ///< refills skipped by the eps_dg threshold
  std::uint64_t iterations = 0;  ///< placements (== executable node count)
};

/// Recommended distribution-graph drift threshold for the approximate
/// mode (the benches' default): large enough to suppress the refill
/// cascades caused by far-away probability nudges (>= 5x fewer refills
/// on the MediaBench apps), small enough that schedule quality (latency
/// unchanged, quadratic DG cost within 1%) stays at parity on every
/// dfglib kernel and MediaBench app (tests/sched/fds_eps_test.cpp).
inline constexpr double kDefaultEpsDg = 0.25;

struct FdsOptions {
  /// Latency bound (control steps). -1 means "critical path".
  int latency = -1;
  cdfg::EdgeFilter filter = cdfg::EdgeFilter::all();
  /// Optional pool for the force-recompute fan-out; null runs serially.
  /// The schedule is bit-identical at every concurrency.
  exec::ThreadPool* pool = nullptr;
  /// Distribution-graph drift threshold for cache invalidation.  0 (the
  /// default) refills a cached force vector whenever any DG value it
  /// reads changed at all — exact, bit-identical to the reference.  > 0
  /// lets a vector survive while the accumulated |ΔDG| over its read
  /// set since its last fill stays within the threshold: bounded-drift
  /// approximate schedules with far fewer refills.  Dimensionless — the
  /// engine scales it by the design's average DG density (occupancy
  /// mass / latency), so the same value means the same relative drift
  /// on a 20-op kernel and a 1755-op MediaBench app.
  double eps_dg = 0.0;
  /// Permit the SIMD refill kernel (when built under LWM_SIMD and the
  /// CPU supports it).  The SIMD and scalar kernels are bit-identical,
  /// so this only exists for tests and A/B timing.
  bool allow_simd = true;
  /// Optional work counters, written once at return.
  FdsStats* stats = nullptr;
};

/// Schedules every executable node of `g` within the latency bound.
/// Throws std::invalid_argument if the bound is below the critical path.
[[nodiscard]] Schedule force_directed_schedule(const cdfg::Graph& g,
                                               const FdsOptions& opts = {});

/// The original from-scratch implementation (serial; ignores opts.pool).
/// Exists as the oracle: force_directed_schedule() must match it exactly.
[[nodiscard]] Schedule force_directed_schedule_reference(
    const cdfg::Graph& g, const FdsOptions& opts = {});

}  // namespace lwm::sched
