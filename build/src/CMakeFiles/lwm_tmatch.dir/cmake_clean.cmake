file(REMOVE_RECURSE
  "CMakeFiles/lwm_tmatch.dir/tmatch/cover.cpp.o"
  "CMakeFiles/lwm_tmatch.dir/tmatch/cover.cpp.o.d"
  "CMakeFiles/lwm_tmatch.dir/tmatch/exact_cover.cpp.o"
  "CMakeFiles/lwm_tmatch.dir/tmatch/exact_cover.cpp.o.d"
  "CMakeFiles/lwm_tmatch.dir/tmatch/library_io.cpp.o"
  "CMakeFiles/lwm_tmatch.dir/tmatch/library_io.cpp.o.d"
  "CMakeFiles/lwm_tmatch.dir/tmatch/matcher.cpp.o"
  "CMakeFiles/lwm_tmatch.dir/tmatch/matcher.cpp.o.d"
  "CMakeFiles/lwm_tmatch.dir/tmatch/template_lib.cpp.o"
  "CMakeFiles/lwm_tmatch.dir/tmatch/template_lib.cpp.o.d"
  "liblwm_tmatch.a"
  "liblwm_tmatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwm_tmatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
