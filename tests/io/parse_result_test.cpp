// Unit tests for the lwm::io trust-boundary primitives: Diagnostic
// rendering, ParseResult/ParseError bridging, line/token scanning with
// columns, strict numeric conversion, and the size-limited front door.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "io/parse_result.h"
#include "io/source.h"
#include "io/text.h"

namespace lwm::io {
namespace {

TEST(DiagnosticTest, RendersFileLineColumn) {
  const Diagnostic d{"records.lwm", 3, 12, "tau must be a positive integer"};
  EXPECT_EQ(d.to_string(),
            "records.lwm line 3, col 12: tau must be a positive integer");
}

TEST(DiagnosticTest, OmitsZeroPositions) {
  EXPECT_EQ((Diagnostic{"a.cdfg", 0, 0, "missing header"}).to_string(),
            "a.cdfg: missing header");
  EXPECT_EQ((Diagnostic{"a.cdfg", 4, 0, "truncated record"}).to_string(),
            "a.cdfg line 4: truncated record");
  EXPECT_EQ((Diagnostic{"", 1, 1, "m"}).to_string(), "<input> line 1, col 1: m");
}

TEST(ParseResultTest, HoldsValueOrDiagnostic) {
  ParseResult<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  ParseResult<int> bad = Diagnostic{"f", 1, 2, "nope"};
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.diag().line, 1);
  EXPECT_EQ(bad.diag().message, "nope");
}

TEST(ParseResultTest, TakeOrThrowRaisesParseErrorWithDiagnostic) {
  EXPECT_EQ((ParseResult<std::string>{std::string("v")}).take_or_throw(), "v");
  try {
    (void)ParseResult<int>(Diagnostic{"f.txt", 7, 3, "bad"}).take_or_throw();
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diag().line, 7);
    EXPECT_EQ(e.diag().column, 3);
    EXPECT_STREQ(e.what(), "f.txt line 7, col 3: bad");
  }
}

TEST(LineCursorTest, CountsLinesAndStripsCr) {
  LineCursor c("one\r\ntwo\n\nfour");
  EXPECT_EQ(*c.next(), "one");
  EXPECT_EQ(c.line_number(), 1);
  EXPECT_EQ(*c.next(), "two");
  EXPECT_EQ(*c.next(), "");
  EXPECT_EQ(*c.next(), "four");
  EXPECT_EQ(c.line_number(), 4);
  EXPECT_FALSE(c.next().has_value());
}

TEST(LineCursorTest, EmptyInputHasNoLines) {
  LineCursor c("");
  EXPECT_FALSE(c.next().has_value());
  EXPECT_EQ(c.line_number(), 0);
}

TEST(LineLexerTest, TokensCarryOneBasedColumns) {
  LineLexer lx("  at  node7\t42 ");
  const auto t1 = lx.next();
  ASSERT_TRUE(t1);
  EXPECT_EQ(t1->text, "at");
  EXPECT_EQ(t1->column, 3);
  const auto t2 = lx.next();
  EXPECT_EQ(t2->text, "node7");
  EXPECT_EQ(t2->column, 7);
  EXPECT_FALSE(lx.at_end());
  const auto t3 = lx.next();
  EXPECT_EQ(t3->text, "42");
  EXPECT_EQ(t3->column, 13);
  EXPECT_TRUE(lx.at_end());
  EXPECT_FALSE(lx.next().has_value());
}

TEST(StrictNumbersTest, WholeTokenOrNothing) {
  EXPECT_EQ(to_int("42"), 42);
  EXPECT_EQ(to_int("-7"), -7);
  EXPECT_FALSE(to_int("3junk"));
  EXPECT_FALSE(to_int("1/2"));
  EXPECT_FALSE(to_int(""));
  EXPECT_FALSE(to_int("+5"));
  EXPECT_FALSE(to_int(" 5"));
  EXPECT_FALSE(to_int("99999999999999999999"));  // seed threw out_of_range

  EXPECT_EQ(to_u32("0"), 0u);
  EXPECT_FALSE(to_u32("-1"));  // stoul would have wrapped this
  EXPECT_FALSE(to_u32("4294967296"));

  EXPECT_EQ(to_double("1.5"), 1.5);
  EXPECT_FALSE(to_double("1.5x"));
  EXPECT_FALSE(to_double("inf"));
  EXPECT_FALSE(to_double("nan"));
}

TEST(SourceTest, ReadStreamEnforcesSizeLimit) {
  std::istringstream small("hello world");
  const auto ok = read_stream(small, "<test>");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), "hello world");

  std::istringstream big(std::string(1024, 'x'));
  const auto refused = read_stream(big, "<test>", ReadLimits{100});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.diag().file, "<test>");
  EXPECT_NE(refused.diag().message.find("100-byte whole-file cap"),
            std::string::npos);
  // The refusal must teach the fix: name the cap's knob and the
  // streaming alternative.
  EXPECT_NE(refused.diag().message.find("max_bytes"), std::string::npos);
  EXPECT_NE(refused.diag().message.find("parse_cdfg_stream"),
            std::string::npos);
}

TEST(SourceTest, ReadFileReportsOpenFailureAndRoundTrips) {
  const auto missing = read_file("/nonexistent/lwm/artifact.cdfg");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.diag().file, "/nonexistent/lwm/artifact.cdfg");
  EXPECT_EQ(missing.diag().message, "cannot open file");

  const std::string path = testing::TempDir() + "/lwm_io_source_test.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "line1\nline2\n";
  }
  const auto back = read_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), "line1\nline2\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lwm::io
