// detector.h — copy detection for local watermarks.
//
// "During copy detection, the goal is to find at least one local
// watermark in a particular design."  The detector holds the designer's
// watermark records in *graph-independent coordinates*: the domain key,
// plus each temporal constraint as a pair of positions inside the
// ordered carved subtree.  Scanning a suspect design, it treats every
// node as a candidate root, re-derives the locality with the author's
// signature (domain selection is a pure function of local structure and
// the signature), maps the recorded positions back to suspect nodes and
// checks the recovered schedule against the constraints.  Because
// everything is locality-relative, detection works on cut-out partitions
// and on cores embedded in larger systems — the two scenarios global
// watermarks fail (paper §I).
#pragma once

#include <span>
#include <vector>

#include "cdfg/graph.h"
#include "crypto/signature.h"
#include "sched/schedule.h"
#include "tmatch/cover.h"
#include "wm/sched_constraints.h"
#include "wm/tm_constraints.h"

namespace lwm::exec {
class ThreadPool;
}

namespace lwm::wm {

/// Graph-independent record of one scheduling watermark (what the
/// designer archives at embed time).
struct SchedRecord {
  DomainKey domain;
  /// (src position, dst position) within the ordered carved subtree.
  std::vector<std::pair<int, int>> positions;
  /// Structural fingerprint of the memorized subtree T: the functional id
  /// of every carved node, in unique-identifier order.  Detection first
  /// "checks whether [a candidate node] represents a root n_o of the
  /// memorized subtree" (paper §IV-A) by comparing this sequence; only
  /// then are the schedule constraints verified.  Without it, ASAP-like
  /// schedules coincidentally satisfy src-before-dst pairs at many
  /// unrelated roots.
  std::vector<int> subtree_ops;

  [[nodiscard]] static SchedRecord from(const SchedWatermark& wm,
                                        const cdfg::Graph& g);
};

/// One candidate-root evaluation.
struct SchedHit {
  cdfg::NodeId root;
  int satisfied = 0;  ///< constraints honored by the suspect schedule
  int total = 0;      ///< constraints mappable at this root
  [[nodiscard]] bool full() const { return total > 0 && satisfied == total; }
};

struct SchedDetectionReport {
  std::vector<SchedHit> hits;       ///< full matches only
  cdfg::NodeId best_root;           ///< root of the strongest hit
  int roots_scanned = 0;

  [[nodiscard]] bool detected() const { return !hits.empty(); }
};

/// Scans every executable node of `suspect` as a candidate root.  A hit
/// requires all `record.positions` to map inside the carved subtree and
/// every mapped constraint to hold in `schedule`.  With a pool the roots
/// are scanned across its lanes; partial results merge in root order, so
/// hits, best_root, and every tie-break are identical at any thread
/// count (best_root = the earliest root attaining the maximum satisfied
/// count, exactly as the serial scan picks it).
[[nodiscard]] SchedDetectionReport detect_sched_watermark(
    const cdfg::Graph& suspect, const sched::Schedule& schedule,
    const crypto::Signature& sig, const SchedRecord& record,
    exec::ThreadPool* pool = nullptr);

/// Verifies a specific already-known locality (fast path when the
/// suspect is believed to be the unmodified design): maps positions at
/// `root` and counts satisfied constraints.
[[nodiscard]] SchedHit verify_sched_watermark_at(const cdfg::Graph& suspect,
                                                 const sched::Schedule& schedule,
                                                 const crypto::Signature& sig,
                                                 const SchedRecord& record,
                                                 cdfg::NodeId root);

/// Batch detection: evaluates many records in one scan.  The expensive
/// step of detection is the per-root signature carve (ordering the
/// locality and replaying the keyed BFS); it depends only on the domain
/// key, not on the record, so an archive sharing one key costs one carve
/// per root instead of one per (root, record).  Results are index-aligned
/// with `records`.
[[nodiscard]] std::vector<SchedDetectionReport> detect_sched_watermarks(
    const cdfg::Graph& suspect, const sched::Schedule& schedule,
    const crypto::Signature& sig, std::span<const SchedRecord> records,
    exec::ThreadPool* pool = nullptr);

/// Template-matching detection: re-plans the watermark on the suspect
/// graph with the author's signature and checks that every enforced
/// matching appears (same template, same node set) in the suspect cover.
struct TmDetectionReport {
  int found = 0;
  int total = 0;
  [[nodiscard]] bool detected() const { return total > 0 && found == total; }
};
[[nodiscard]] TmDetectionReport detect_tm_watermark(
    const cdfg::Graph& suspect, const tmatch::Cover& suspect_cover,
    const tmatch::TemplateLibrary& lib, const crypto::Signature& sig,
    const TmWmOptions& opts);

}  // namespace lwm::wm
