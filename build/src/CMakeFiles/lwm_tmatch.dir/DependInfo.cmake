
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmatch/cover.cpp" "src/CMakeFiles/lwm_tmatch.dir/tmatch/cover.cpp.o" "gcc" "src/CMakeFiles/lwm_tmatch.dir/tmatch/cover.cpp.o.d"
  "/root/repo/src/tmatch/exact_cover.cpp" "src/CMakeFiles/lwm_tmatch.dir/tmatch/exact_cover.cpp.o" "gcc" "src/CMakeFiles/lwm_tmatch.dir/tmatch/exact_cover.cpp.o.d"
  "/root/repo/src/tmatch/library_io.cpp" "src/CMakeFiles/lwm_tmatch.dir/tmatch/library_io.cpp.o" "gcc" "src/CMakeFiles/lwm_tmatch.dir/tmatch/library_io.cpp.o.d"
  "/root/repo/src/tmatch/matcher.cpp" "src/CMakeFiles/lwm_tmatch.dir/tmatch/matcher.cpp.o" "gcc" "src/CMakeFiles/lwm_tmatch.dir/tmatch/matcher.cpp.o.d"
  "/root/repo/src/tmatch/template_lib.cpp" "src/CMakeFiles/lwm_tmatch.dir/tmatch/template_lib.cpp.o" "gcc" "src/CMakeFiles/lwm_tmatch.dir/tmatch/template_lib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lwm_cdfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
