file(REMOVE_RECURSE
  "liblwm_color.a"
)
