#include <gtest/gtest.h>

#include "cdfg/builder.h"
#include "dfglib/iir4.h"
#include "sched/bnb.h"
#include "sched/force_directed.h"

namespace lwm::sched {
namespace {

using cdfg::Builder;
using cdfg::Graph;
using cdfg::NodeId;
using cdfg::OpKind;

TEST(MinUnitsTest, HandComputedSmallCase) {
  // 4 independent adds: at latency 2 the minimum is 2 ALUs; at latency 4
  // one ALU suffices; at latency 1 all four are needed.
  Builder b("four");
  const NodeId in = b.input("in");
  for (int i = 0; i < 4; ++i) {
    b.output("o" + std::to_string(i),
             b.op(OpKind::kAdd, "a" + std::to_string(i), {in, in}));
  }
  const Graph g = std::move(b).build();
  EXPECT_EQ(bnb_min_units(g, 1).total_units, 4);
  EXPECT_EQ(bnb_min_units(g, 2).total_units, 2);
  EXPECT_EQ(bnb_min_units(g, 4).total_units, 1);
}

TEST(MinUnitsTest, MixedClassesCounted) {
  // 2 adds + 2 muls, all independent, latency 2: 1 ALU + 1 multiplier.
  Builder b("mixed");
  const NodeId in = b.input("in");
  for (int i = 0; i < 2; ++i) {
    b.output("oa" + std::to_string(i),
             b.op(OpKind::kAdd, "a" + std::to_string(i), {in, in}));
    b.output("om" + std::to_string(i),
             b.op(OpKind::kMul, "m" + std::to_string(i), {in, in}));
  }
  const Graph g = std::move(b).build();
  const MinUnitsResult r = bnb_min_units(g, 2);
  EXPECT_EQ(r.total_units, 2);
  EXPECT_EQ(r.resources.count(cdfg::UnitClass::kAlu), 1);
  EXPECT_EQ(r.resources.count(cdfg::UnitClass::kMul), 1);
  EXPECT_TRUE(verify_schedule(g, r.schedule, cdfg::EdgeFilter::all(),
                              r.resources, 2)
                  .ok);
}

TEST(MinUnitsTest, IirAtCriticalPath) {
  const Graph g = lwm::dfglib::iir4_parallel();
  const int cp = cdfg::critical_path_length(g);
  const MinUnitsResult r = bnb_min_units(g, cp);
  EXPECT_TRUE(r.optimal);
  EXPECT_GT(r.total_units, 0);
  EXPECT_TRUE(verify_schedule(g, r.schedule, cdfg::EdgeFilter::all(),
                              r.resources, cp)
                  .ok);
  // Relaxing the latency can only reduce (or keep) the allocation.
  const MinUnitsResult relaxed = bnb_min_units(g, 2 * cp);
  EXPECT_LE(relaxed.total_units, r.total_units);
}

TEST(MinUnitsTest, ExactBeatsOrMatchesFdsPeak) {
  const Graph g = lwm::dfglib::iir4_parallel();
  const int cp = cdfg::critical_path_length(g);
  const Schedule fds = force_directed_schedule(g, {.latency = cp});
  const UnitUsage fds_usage = peak_usage(g, fds);
  const MinUnitsResult exact = bnb_min_units(g, cp);
  EXPECT_LE(exact.total_units, fds_usage.total())
      << "FDS is the heuristic this solver lower-bounds";
}

TEST(MinUnitsTest, LatencyBelowCriticalPathThrows) {
  const Graph g = lwm::dfglib::iir4_parallel();
  EXPECT_THROW((void)bnb_min_units(g, 2), std::invalid_argument);
}

}  // namespace
}  // namespace lwm::sched
