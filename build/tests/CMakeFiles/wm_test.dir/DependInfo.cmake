
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wm/attack_test.cpp" "tests/CMakeFiles/wm_test.dir/wm/attack_test.cpp.o" "gcc" "tests/CMakeFiles/wm_test.dir/wm/attack_test.cpp.o.d"
  "/root/repo/tests/wm/batch_detect_test.cpp" "tests/CMakeFiles/wm_test.dir/wm/batch_detect_test.cpp.o" "gcc" "tests/CMakeFiles/wm_test.dir/wm/batch_detect_test.cpp.o.d"
  "/root/repo/tests/wm/color_wm_test.cpp" "tests/CMakeFiles/wm_test.dir/wm/color_wm_test.cpp.o" "gcc" "tests/CMakeFiles/wm_test.dir/wm/color_wm_test.cpp.o.d"
  "/root/repo/tests/wm/detector_test.cpp" "tests/CMakeFiles/wm_test.dir/wm/detector_test.cpp.o" "gcc" "tests/CMakeFiles/wm_test.dir/wm/detector_test.cpp.o.d"
  "/root/repo/tests/wm/domain_test.cpp" "tests/CMakeFiles/wm_test.dir/wm/domain_test.cpp.o" "gcc" "tests/CMakeFiles/wm_test.dir/wm/domain_test.cpp.o.d"
  "/root/repo/tests/wm/fingerprint_test.cpp" "tests/CMakeFiles/wm_test.dir/wm/fingerprint_test.cpp.o" "gcc" "tests/CMakeFiles/wm_test.dir/wm/fingerprint_test.cpp.o.d"
  "/root/repo/tests/wm/pc_test.cpp" "tests/CMakeFiles/wm_test.dir/wm/pc_test.cpp.o" "gcc" "tests/CMakeFiles/wm_test.dir/wm/pc_test.cpp.o.d"
  "/root/repo/tests/wm/protocol_test.cpp" "tests/CMakeFiles/wm_test.dir/wm/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/wm_test.dir/wm/protocol_test.cpp.o.d"
  "/root/repo/tests/wm/records_io_test.cpp" "tests/CMakeFiles/wm_test.dir/wm/records_io_test.cpp.o" "gcc" "tests/CMakeFiles/wm_test.dir/wm/records_io_test.cpp.o.d"
  "/root/repo/tests/wm/reg_wm_test.cpp" "tests/CMakeFiles/wm_test.dir/wm/reg_wm_test.cpp.o" "gcc" "tests/CMakeFiles/wm_test.dir/wm/reg_wm_test.cpp.o.d"
  "/root/repo/tests/wm/sched_wm_test.cpp" "tests/CMakeFiles/wm_test.dir/wm/sched_wm_test.cpp.o" "gcc" "tests/CMakeFiles/wm_test.dir/wm/sched_wm_test.cpp.o.d"
  "/root/repo/tests/wm/tm_wm_test.cpp" "tests/CMakeFiles/wm_test.dir/wm/tm_wm_test.cpp.o" "gcc" "tests/CMakeFiles/wm_test.dir/wm/tm_wm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lwm_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lwm_wm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lwm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lwm_vliw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lwm_tmatch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lwm_regbind.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lwm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lwm_color.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lwm_dfglib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lwm_cdfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
