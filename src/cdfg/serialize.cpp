#include "cdfg/serialize.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "cdfg/analysis.h"
#include "io/source.h"
#include "io/stream_text.h"
#include "io/text.h"

namespace lwm::cdfg {

void write_text(const Graph& g, std::ostream& os) {
  os << "cdfg " << (g.name().empty() ? "unnamed" : g.name()) << "\n";
  for (NodeId n : g.nodes()) {
    const Node& node = g.node(n);
    os << "node " << node.name << " " << op_name(node.kind);
    if (node.bounded_delay()) {
      // Bounded interval: always written, even when d_max happens to
      // equal the opcode default — the interval itself is information.
      os << " " << node.delay_min << ":" << node.delay;
    } else if (node.delay != default_delay(node.kind)) {
      os << " " << node.delay;
    }
    os << "\n";
  }
  for (EdgeId e : g.edges()) {
    const Edge& ed = g.edge(e);
    os << "edge " << g.node(ed.src).name << " " << g.node(ed.dst).name;
    if (ed.kind != EdgeKind::kData) {
      os << " " << edge_kind_name(ed.kind);
    }
    if (ed.tokens > 0) {
      // Marked-graph back-edge: the token count is the final field (the
      // kind may be elided for data edges — a bare trailing integer is
      // unambiguous because no edge kind starts with a digit).
      os << " " << ed.tokens;
    }
    os << "\n";
  }
}

std::string to_text(const Graph& g) {
  std::ostringstream os;
  write_text(g, os);
  return os.str();
}

namespace {

/// The per-line parse core shared by the in-memory and streaming entry
/// points: feed() consumes one line, finish() validates the epilogue.
/// Keeping one core guarantees the streaming parser accepts exactly the
/// language parse_cdfg does, with identical diagnostics.
class CdfgLineParser {
 public:
  explicit CdfgLineParser(std::string_view source_name)
      : source_(source_name) {}

  /// Parses one line; returns the located Diagnostic on error.
  std::optional<io::Diagnostic> feed(std::string_view line, int lineno);

  /// Ends the parse: fails if no 'cdfg' header was ever seen.
  io::ParseResult<Graph> finish();

 private:
  io::Diagnostic err(int line, int col, std::string msg) const {
    return io::Diagnostic{std::string(source_), line, col, std::move(msg)};
  }

  std::string source_;
  Graph g_;
  std::unordered_map<std::string, NodeId> by_name_;
  /// Source line of every parsed edge, indexed by EdgeId::value — lets
  /// finish() locate the back-edge that closes an unintended cycle.
  std::vector<int> edge_lines_;
  bool saw_header_ = false;
};

std::optional<io::Diagnostic> CdfgLineParser::feed(std::string_view line,
                                                   int lineno) {
  Graph& g = g_;
  auto& by_name = by_name_;
  bool& saw_header = saw_header_;
  {
    io::LineLexer lx(line);
    const auto tok = lx.next();
    if (!tok || tok->text[0] == '#') return std::nullopt;
    if (tok->text == "cdfg") {
      if (saw_header) return err(lineno, tok->column, "duplicate 'cdfg' header");
      const auto name = lx.next();
      if (!name) return err(lineno, lx.column(), "missing graph name");
      if (!lx.at_end()) {
        return err(lineno, lx.column(), "trailing garbage after graph name");
      }
      g.set_name(std::string(name->text));
      saw_header = true;
    } else if (!saw_header) {
      return err(lineno, tok->column,
                 "'" + std::string(tok->text) + "' before 'cdfg <name>' header");
    } else if (tok->text == "node") {
      const auto name = lx.next();
      const auto op = lx.next();
      if (!name || !op) {
        return err(lineno, lx.column(), "node needs <name> <op> [dmin[:dmax]]");
      }
      const auto kind = op_from_name(op->text);
      if (!kind) {
        return err(lineno, op->column, "unknown op '" + std::string(op->text) + "'");
      }
      if (by_name.count(std::string(name->text)) != 0) {
        return err(lineno, name->column,
                   "duplicate node '" + std::string(name->text) + "'");
      }
      // Optional delay: either an exact value `d` or a bounded interval
      // `dmin:dmax` (the dynamically bounded delay model).
      int delay = -1;      // sentinel: add_node substitutes default_delay(kind)
      int delay_min = -1;  // sentinel: exact interval (delay_min == delay)
      if (const auto d = lx.next()) {
        const std::string_view text = d->text;
        const std::size_t colon = text.find(':');
        if (colon == std::string_view::npos) {
          const auto v = io::to_int(text);
          if (!v || *v < 0) {
            return err(lineno, d->column,
                       "node delay must be a non-negative integer, got '" +
                           std::string(text) + "'");
          }
          delay = *v;
        } else {
          const auto lo = io::to_int(text.substr(0, colon));
          const auto hi = io::to_int(text.substr(colon + 1));
          if (!lo || !hi || *lo < 0) {
            return err(lineno, d->column,
                       "node delay bounds must be '<dmin>:<dmax>' with "
                       "non-negative integers, got '" +
                           std::string(text) + "'");
          }
          if (*hi < *lo) {
            return err(lineno, d->column,
                       "node delay bounds must satisfy dmin <= dmax, got '" +
                           std::string(text) + "'");
          }
          delay_min = *lo;
          delay = *hi;
        }
        if (!lx.at_end()) {
          return err(lineno, lx.column(), "trailing garbage after node delay");
        }
      }
      const NodeId id = g.add_node(*kind, std::string(name->text), delay);
      if (delay_min >= 0) {
        g.set_delay_bounds(id, delay_min, delay);
      }
      by_name.emplace(std::string(name->text), id);
    } else if (tok->text == "edge") {
      const auto src = lx.next();
      const auto dst = lx.next();
      if (!src || !dst) {
        return err(lineno, lx.column(), "edge needs <src> <dst> [kind] [tokens]");
      }
      const auto si = by_name.find(std::string(src->text));
      const auto di = by_name.find(std::string(dst->text));
      if (si == by_name.end()) {
        return err(lineno, src->column, "unknown node '" + std::string(src->text) + "'");
      }
      if (di == by_name.end()) {
        return err(lineno, dst->column, "unknown node '" + std::string(dst->text) + "'");
      }
      // Optional tail: [kind] [tokens].  A bare integer third field is a
      // token count on a data edge (no edge kind starts with a digit).
      EdgeKind kind = EdgeKind::kData;
      int tokens = 0;
      auto parse_tokens = [&](const io::Token& t)
          -> std::optional<io::Diagnostic> {
        const auto v = io::to_int(t.text);
        if (!v || *v <= 0) {
          return err(lineno, t.column,
                     "edge token count must be a positive integer, got '" +
                         std::string(t.text) + "'");
        }
        tokens = *v;
        return std::nullopt;
      };
      if (const auto third = lx.next()) {
        if (third->text == "data") {
          kind = EdgeKind::kData;
        } else if (third->text == "control") {
          kind = EdgeKind::kControl;
        } else if (third->text == "temporal") {
          kind = EdgeKind::kTemporal;
        } else if (!third->text.empty() &&
                   (std::isdigit(static_cast<unsigned char>(third->text[0])) != 0 ||
                    third->text[0] == '-' || third->text[0] == '+')) {
          if (auto d = parse_tokens(*third)) return d;
        } else {
          return err(lineno, third->column,
                     "unknown edge kind '" + std::string(third->text) + "'");
        }
        if (tokens == 0) {
          if (const auto fourth = lx.next()) {
            if (auto d = parse_tokens(*fourth)) return d;
          }
        }
        if (!lx.at_end()) {
          return err(lineno, lx.column(), "trailing garbage after edge tokens");
        }
      }
      try {
        g.add_edge(si->second, di->second, kind, tokens);
      } catch (const std::invalid_argument& e) {
        return err(lineno, tok->column, e.what());
      }
      edge_lines_.push_back(lineno);
    } else {
      return err(lineno, tok->column,
                 "unknown directive '" + std::string(tok->text) + "'");
    }
  }
  return std::nullopt;
}

io::ParseResult<Graph> CdfgLineParser::finish() {
  if (!saw_header_) {
    return err(0, 0, "missing 'cdfg <name>' header");
  }
  // Reject unintended cycles at the trust boundary: every DAG analysis
  // downstream assumes the token-free precedence relation is acyclic,
  // and a hostile or truncated input must fail here with a located
  // diagnostic, not hang or throw deep inside a scheduler.  Cycles
  // through token-carrying back-edges are legal marked-graph structure
  // and pass (EdgeFilter::all() excludes them).
  const CycleInfo cycle = find_cycle(g_, EdgeFilter::all());
  if (cycle.found()) {
    // Blame the cycle edge declared last in the file — the most recently
    // added constraint is the one that closed the cycle.
    int line = 0;
    for (EdgeId e : cycle.edges) {
      line = std::max(line, edge_lines_[e.value]);
    }
    return err(line, 1,
               "edge closes a token-free cycle: " + cycle.describe(g_) +
                   " (a loop-carried dependence needs an initial-token "
                   "count: 'edge <src> <dst> [kind] <tokens>')");
  }
  return std::move(g_);
}

}  // namespace

io::ParseResult<Graph> parse_cdfg(std::string_view text,
                                  std::string_view source_name) {
  CdfgLineParser parser(source_name);
  io::LineCursor lines(text);
  while (const auto line = lines.next()) {
    if (auto d = parser.feed(*line, lines.line_number())) return std::move(*d);
  }
  return parser.finish();
}

io::ParseResult<Graph> parse_cdfg_stream(std::istream& is,
                                         std::string_view source_name,
                                         const io::StreamLimits& limits) {
  CdfgLineParser parser(source_name);
  io::StreamLineCursor lines(is, limits);
  while (const auto line = lines.next()) {
    if (auto d = parser.feed(*line, lines.line_number())) return std::move(*d);
  }
  if (lines.error()) {
    io::Diagnostic d = *lines.error();
    d.file = std::string(source_name);
    return d;
  }
  return parser.finish();
}

io::ParseResult<Graph> read_cdfg_file(const std::string& path,
                                      const io::StreamLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return io::Diagnostic{path, 0, 0, "cannot open file"};
  }
  return parse_cdfg_stream(in, path, limits);
}

Graph read_text(std::istream& is) {
  auto text = io::read_stream(is, "<cdfg>");
  if (!text) throw io::ParseError(text.diag());
  return parse_cdfg(text.value(), "<cdfg>").take_or_throw();
}

Graph from_text(const std::string& text) {
  return parse_cdfg(text, "<cdfg>").take_or_throw();
}

}  // namespace lwm::cdfg
