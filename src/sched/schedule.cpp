#include "sched/schedule.h"

#include <algorithm>
#include <map>

namespace lwm::sched {

int Schedule::length(const cdfg::Graph& g) const {
  int len = 0;
  for (cdfg::NodeId n : g.nodes()) {
    if (!is_scheduled(n)) continue;
    len = std::max(len, start_of(n) + g.node(n).delay);
  }
  return len;
}

ScheduleCheck verify_schedule(const cdfg::Graph& g, const Schedule& s,
                              cdfg::EdgeFilter filter, const ResourceSet& res,
                              int latency, bool pipelined_units) {
  ScheduleCheck check;

  for (cdfg::NodeId n : g.nodes()) {
    const cdfg::Node& node = g.node(n);
    if (cdfg::is_executable(node.kind)) {
      if (!s.is_scheduled(n)) {
        check.fail("operation '" + node.name + "' is unscheduled");
      } else if (s.start_of(n) < 0) {
        check.fail("operation '" + node.name + "' starts before step 0");
      }
    }
  }
  if (!check.ok) return check;

  // Effective start of a node for precedence purposes: pseudo-ops are
  // tied to their producers/consumers.
  auto eff_start = [&](cdfg::NodeId n) -> int {
    if (s.is_scheduled(n)) return s.start_of(n);
    // Unscheduled pseudo-op: inputs/consts act as step 0 with 0 delay;
    // outputs follow their producer.
    return 0;
  };

  for (cdfg::EdgeId e : g.edges()) {
    const cdfg::Edge& ed = g.edge(e);
    if (!filter.accepts(ed)) continue;
    const cdfg::Node& src = g.node(ed.src);
    const cdfg::Node& dst = g.node(ed.dst);
    if (!cdfg::is_executable(src.kind) || !cdfg::is_executable(dst.kind)) {
      continue;  // boundary pseudo-ops impose no step constraint
    }
    const int gap = eff_start(ed.dst) - (eff_start(ed.src) + src.delay);
    if (gap < 0) {
      check.fail("edge " + src.name + " -> " + dst.name + " (" +
                 std::string(cdfg::edge_kind_name(ed.kind)) +
                 ") violated: dst starts " + std::to_string(-gap) +
                 " step(s) too early");
    }
  }

  const int len = s.length(g);
  if (latency >= 0 && len > latency) {
    check.fail("schedule length " + std::to_string(len) +
               " exceeds latency bound " + std::to_string(latency));
  }

  if (!res.is_unlimited()) {
    // step -> usage per class
    std::map<int, std::array<int, cdfg::kNumUnitClasses>> usage;
    for (cdfg::NodeId n : g.nodes()) {
      const cdfg::Node& node = g.node(n);
      if (!cdfg::is_executable(node.kind) || !s.is_scheduled(n)) continue;
      const auto uc = static_cast<std::size_t>(cdfg::unit_class(node.kind));
      const int occupied = pipelined_units ? 1 : node.delay;
      for (int t = s.start_of(n); t < s.start_of(n) + occupied; ++t) {
        ++usage[t][uc];
      }
    }
    for (const auto& [step, use] : usage) {
      for (int c = 0; c < cdfg::kNumUnitClasses; ++c) {
        const auto cls = static_cast<cdfg::UnitClass>(c);
        if (res.is_limited(cls) &&
            use[static_cast<std::size_t>(c)] > res.count(cls)) {
          check.fail("step " + std::to_string(step) + " uses " +
                     std::to_string(use[static_cast<std::size_t>(c)]) +
                     " units of class " + std::to_string(c) + " (limit " +
                     std::to_string(res.count(cls)) + ")");
        }
      }
    }
  }
  return check;
}

UnitUsage peak_usage(const cdfg::Graph& g, const Schedule& s) {
  std::map<int, std::array<int, cdfg::kNumUnitClasses>> usage;
  for (cdfg::NodeId n : g.nodes()) {
    const cdfg::Node& node = g.node(n);
    if (!cdfg::is_executable(node.kind) || !s.is_scheduled(n)) continue;
    const auto uc = static_cast<std::size_t>(cdfg::unit_class(node.kind));
    for (int t = s.start_of(n); t < s.start_of(n) + node.delay; ++t) {
      ++usage[t][uc];
    }
  }
  UnitUsage peak;
  for (const auto& [step, use] : usage) {
    for (int c = 0; c < cdfg::kNumUnitClasses; ++c) {
      peak.peak[static_cast<std::size_t>(c)] =
          std::max(peak.peak[static_cast<std::size_t>(c)],
                   use[static_cast<std::size_t>(c)]);
    }
  }
  return peak;
}

}  // namespace lwm::sched
