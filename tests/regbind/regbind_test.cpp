#include <gtest/gtest.h>

#include "cdfg/builder.h"
#include "dfglib/iir4.h"
#include "dfglib/synth.h"
#include "regbind/binding.h"
#include "regbind/lifetime.h"
#include "sched/list_sched.h"

namespace lwm::regbind {
namespace {

using cdfg::Builder;
using cdfg::Graph;
using cdfg::NodeId;
using cdfg::OpKind;

// in -> a(0) -> b(1) -> c(2) -> out, with a also read by c.
Graph chain_reuse() {
  Builder b("chain_reuse");
  const NodeId in = b.input("in");
  const NodeId a = b.op(OpKind::kAdd, "a", {in, in});
  const NodeId x = b.op(OpKind::kMul, "b", {a});
  const NodeId c = b.op(OpKind::kAdd, "c", {x, a});
  b.output("o", c);
  return std::move(b).build();
}

TEST(LifetimeTest, HandComputedIntervals) {
  const Graph g = chain_reuse();
  const sched::Schedule s = sched::list_schedule(g);  // a@0, b@1, c@2
  const auto lifetimes = compute_lifetimes(g, s);
  ASSERT_EQ(lifetimes.size(), 3u);

  auto find = [&](const char* name) -> const Lifetime& {
    for (const Lifetime& lt : lifetimes) {
      if (g.node(lt.producer).name == name) return lt;
    }
    throw std::runtime_error("missing lifetime");
  };
  // a: born at 1 (finishes step 0), read by b@1 and c@2 -> dies at 3.
  EXPECT_EQ(find("a").birth, 1);
  EXPECT_EQ(find("a").death, 3);
  // b: born at 2, read by c@2 -> dies at 3.
  EXPECT_EQ(find("b").birth, 2);
  EXPECT_EQ(find("b").death, 3);
  // c: feeds only the primary output -> one-step lifetime.
  EXPECT_EQ(find("c").birth, 3);
  EXPECT_EQ(find("c").death, 4);
}

TEST(LifetimeTest, OverlapPredicate) {
  Lifetime a{NodeId{0}, 1, 3};
  Lifetime b{NodeId{1}, 2, 4};
  Lifetime c{NodeId{2}, 3, 5};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c)) << "half-open intervals: [1,3) and [3,5) meet";
  EXPECT_TRUE(b.overlaps(c));
}

TEST(LifetimeTest, UnscheduledOperationThrows) {
  const Graph g = chain_reuse();
  const sched::Schedule empty(g);
  EXPECT_THROW((void)compute_lifetimes(g, empty), std::invalid_argument);
}

TEST(LifetimeTest, MaxLiveMatchesSweep) {
  const Graph g = chain_reuse();
  const sched::Schedule s = sched::list_schedule(g);
  const auto lifetimes = compute_lifetimes(g, s);
  // step 2: a and b both live -> 2.
  EXPECT_EQ(max_live(lifetimes), 2);
  EXPECT_EQ(max_live({}), 0);
}

TEST(LeftEdgeTest, AchievesMaxLiveOnIir) {
  const Graph g = lwm::dfglib::iir4_parallel();
  const sched::Schedule s = sched::list_schedule(g);
  const auto lifetimes = compute_lifetimes(g, s);
  const auto binding = left_edge_binding(lifetimes);
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->register_count, max_live(lifetimes))
      << "left edge is optimal on interval graphs";
  EXPECT_TRUE(verify_binding(lifetimes, *binding).ok);
}

TEST(LeftEdgeTest, LargeDesignBindsAndVerifies) {
  const Graph g = lwm::dfglib::make_dsp_design("bind_big", 16, 300, 71);
  const sched::Schedule s = sched::list_schedule(g);
  const auto lifetimes = compute_lifetimes(g, s);
  const auto binding = left_edge_binding(lifetimes);
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->register_count, max_live(lifetimes));
  EXPECT_TRUE(verify_binding(lifetimes, *binding).ok);
}

TEST(LeftEdgeTest, ShareConstraintHonored) {
  const Graph g = lwm::dfglib::iir4_parallel();
  const sched::Schedule s = sched::list_schedule(g);
  const auto lifetimes = compute_lifetimes(g, s);

  // Find two compatible variables.
  NodeId u, v;
  for (std::size_t i = 0; i < lifetimes.size() && !v.valid(); ++i) {
    for (std::size_t j = i + 1; j < lifetimes.size(); ++j) {
      if (!lifetimes[i].overlaps(lifetimes[j])) {
        u = lifetimes[i].producer;
        v = lifetimes[j].producer;
        break;
      }
    }
  }
  ASSERT_TRUE(u.valid() && v.valid());

  BindingConstraints cons;
  cons.share.emplace_back(u, v);
  const auto binding = left_edge_binding(lifetimes, cons);
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->reg(u), binding->reg(v));
  EXPECT_TRUE(verify_binding(lifetimes, *binding, cons).ok);
}

TEST(LeftEdgeTest, SeparateConstraintHonored) {
  const Graph g = lwm::dfglib::iir4_parallel();
  const sched::Schedule s = sched::list_schedule(g);
  const auto lifetimes = compute_lifetimes(g, s);
  const auto free_binding = left_edge_binding(lifetimes);
  ASSERT_TRUE(free_binding.has_value());

  // Find a pair that left edge co-located, then forbid it.
  NodeId u, v;
  for (std::size_t i = 0; i < lifetimes.size() && !v.valid(); ++i) {
    for (std::size_t j = i + 1; j < lifetimes.size(); ++j) {
      if (free_binding->reg(lifetimes[i].producer) ==
          free_binding->reg(lifetimes[j].producer)) {
        u = lifetimes[i].producer;
        v = lifetimes[j].producer;
        break;
      }
    }
  }
  if (!v.valid()) GTEST_SKIP() << "no sharing happened on this design";
  BindingConstraints cons;
  cons.separate.emplace_back(u, v);
  const auto binding = left_edge_binding(lifetimes, cons);
  ASSERT_TRUE(binding.has_value());
  EXPECT_NE(binding->reg(u), binding->reg(v));
  EXPECT_TRUE(verify_binding(lifetimes, *binding, cons).ok);
}

TEST(LeftEdgeTest, InfeasibleConstraintsRejected) {
  const Graph g = chain_reuse();
  const sched::Schedule s = sched::list_schedule(g);
  const auto lifetimes = compute_lifetimes(g, s);
  // a and b overlap -> cannot share.
  BindingConstraints overlap_share;
  overlap_share.share.emplace_back(g.find("a"), g.find("b"));
  EXPECT_FALSE(left_edge_binding(lifetimes, overlap_share).has_value());
  // share(x, y) plus separate(x, y) is contradictory.
  BindingConstraints contra;
  contra.share.emplace_back(g.find("a"), g.find("c"));
  contra.separate.emplace_back(g.find("a"), g.find("c"));
  EXPECT_FALSE(left_edge_binding(lifetimes, contra).has_value());
  // Unknown variable.
  BindingConstraints unknown;
  unknown.share.emplace_back(g.find("a"), NodeId{9999});
  EXPECT_FALSE(left_edge_binding(lifetimes, unknown).has_value());
}

TEST(VerifyBindingTest, CatchesConflicts) {
  const Graph g = chain_reuse();
  const sched::Schedule s = sched::list_schedule(g);
  const auto lifetimes = compute_lifetimes(g, s);
  Binding bad;
  bad.register_count = 1;
  for (const Lifetime& lt : lifetimes) bad.reg_of[lt.producer] = 0;
  EXPECT_FALSE(verify_binding(lifetimes, bad).ok)
      << "a and b overlap but share register 0";
}

TEST(LeftEdgeTest, DeterministicAcrossRuns) {
  const Graph g = lwm::dfglib::make_dsp_design("bind_det", 12, 100, 72);
  const sched::Schedule s = sched::list_schedule(g);
  const auto lifetimes = compute_lifetimes(g, s);
  const auto a = left_edge_binding(lifetimes);
  const auto b = left_edge_binding(lifetimes);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->register_count, b->register_count);
  for (const Lifetime& lt : lifetimes) {
    EXPECT_EQ(a->reg(lt.producer), b->reg(lt.producer));
  }
}

}  // namespace
}  // namespace lwm::regbind
