// lifetime.h — variable lifetime analysis over a scheduled CDFG.
//
// After scheduling, every value-producing operation defines a variable
// that must be held in a register from the step its producer finishes
// until the last step a consumer reads it.  The paper points at exactly
// this chain ("Scheduling determines ... the lifetimes of variables"):
// lifetimes feed register binding, the third behavioral-synthesis task
// the local-watermarking methodology applies to in this library.
#pragma once

#include <vector>

#include "cdfg/graph.h"
#include "sched/schedule.h"

namespace lwm::regbind {

/// One variable's register requirement: the half-open step interval
/// [birth, death) during which its value must be preserved.
struct Lifetime {
  cdfg::NodeId producer;  ///< operation (or primary input) defining the value
  int birth = 0;          ///< first step the value exists
  int death = 0;          ///< first step the value is no longer needed

  [[nodiscard]] int span() const { return death - birth; }
  [[nodiscard]] bool overlaps(const Lifetime& other) const {
    return birth < other.death && other.birth < death;
  }
};

struct LifetimeOptions {
  /// Include primary inputs/constants (they occupy registers from step 0
  /// in a datapath without dedicated input ports).  Default off: the
  /// classic binding formulation registers only intermediate values.
  bool include_sources = false;
};

/// Computes lifetimes for every value with at least one consumer.
/// A value is born when its producer finishes (start + delay) and dies
/// after the start step of its last data consumer (+1: the consumer
/// reads it during that step).  Values feeding only primary outputs die
/// one step after birth (they are latched out immediately).
/// Precondition: `s` schedules every executable node of `g`.
[[nodiscard]] std::vector<Lifetime> compute_lifetimes(
    const cdfg::Graph& g, const sched::Schedule& s,
    const LifetimeOptions& opts = {});

/// Maximum number of simultaneously live values — the lower bound on any
/// register binding (interval-graph clique number).
[[nodiscard]] int max_live(const std::vector<Lifetime>& lifetimes);

}  // namespace lwm::regbind
