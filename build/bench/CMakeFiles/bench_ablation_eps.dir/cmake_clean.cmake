file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_eps.dir/bench_ablation_eps.cpp.o"
  "CMakeFiles/bench_ablation_eps.dir/bench_ablation_eps.cpp.o.d"
  "bench_ablation_eps"
  "bench_ablation_eps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
