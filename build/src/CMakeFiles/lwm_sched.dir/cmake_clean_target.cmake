file(REMOVE_RECURSE
  "liblwm_sched.a"
)
