#include "cdfg/normalize.h"

#include <vector>

namespace lwm::cdfg {

int normalize_unit_ops(Graph& g) {
  int collapsed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId n : g.nodes()) {
      if (g.node(n).kind != OpKind::kUnit) continue;
      // A transparent unit op forwards exactly one data value.  Token-
      // carrying (loop-carried) edges pin the op in place: collapsing
      // would have to merge token counts across the bypass, changing
      // the marking — not worth the ambiguity for a cleanup pass.
      NodeId producer;
      int data_inputs = 0;
      bool carried = false;
      for (EdgeId e : g.fanin(n)) {
        const Edge& ed = g.edge(e);
        carried = carried || ed.carried();
        if (ed.kind == EdgeKind::kData) {
          ++data_inputs;
          producer = ed.src;
        }
      }
      for (EdgeId e : g.fanout(n)) {
        carried = carried || g.edge(e).carried();
      }
      if (data_inputs != 1 || carried) continue;
      // Re-feed the consumers, preserving edge kinds.
      std::vector<std::pair<NodeId, EdgeKind>> consumers;
      for (EdgeId e : g.fanout(n)) {
        const Edge& ed = g.edge(e);
        consumers.emplace_back(ed.dst, ed.kind);
      }
      g.remove_node(n);
      for (const auto& [dst, kind] : consumers) {
        g.add_edge(producer, dst, kind);
      }
      ++collapsed;
      changed = true;
    }
  }
  return collapsed;
}

}  // namespace lwm::cdfg
