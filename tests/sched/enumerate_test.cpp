#include "sched/enumerate.h"

#include <gtest/gtest.h>

#include "cdfg/builder.h"
#include "dfglib/iir4.h"

namespace lwm::sched {
namespace {

using cdfg::Builder;
using cdfg::EdgeKind;
using cdfg::Graph;
using cdfg::NodeId;
using cdfg::OpKind;

// Two independent single-op chains: a and b, plus latency slack.
Graph two_free_ops() {
  Builder b("two");
  const NodeId in = b.input("in");
  const NodeId x = b.op(OpKind::kAdd, "a", {in, in});
  const NodeId y = b.op(OpKind::kMul, "b", {in, in});
  b.output("oa", x);
  b.output("ob", y);
  return std::move(b).build();
}

TEST(EnumerateTest, HandCountedTwoOps) {
  const Graph g = two_free_ops();
  // Critical path is 1, so with the default latency both ops sit at 0:
  // exactly one schedule.
  EXPECT_EQ(count_schedules(g, {}, {}, {}).count, 1u);

  // With latency 3 each op picks any of 3 steps independently: 9.
  EnumerationOptions opts;
  opts.latency = 3;
  EXPECT_EQ(count_schedules(g, {}, {}, opts).count, 9u);
}

TEST(EnumerateTest, ExtraPrecedenceRestrictsCount) {
  const Graph g = two_free_ops();
  EnumerationOptions opts;
  opts.latency = 3;
  const ExtraPrecedence edge[] = {{g.find("a"), g.find("b")}};
  // a in {0,1,2}, b > a: pairs (0,1),(0,2),(1,2) = 3.
  EXPECT_EQ(count_schedules(g, {}, edge, opts).count, 3u);
}

TEST(EnumerateTest, ChainIsRigidAtCriticalPath) {
  Builder b("chain");
  const NodeId in = b.input("in");
  const NodeId x = b.op(OpKind::kAdd, "x", {in, in});
  const NodeId y = b.op(OpKind::kAdd, "y", {x});
  const NodeId z = b.op(OpKind::kAdd, "z", {y});
  b.output("o", z);
  const Graph g = std::move(b).build();
  EXPECT_EQ(count_schedules(g, {}, {}, {}).count, 1u);
  EnumerationOptions opts;
  opts.latency = 4;  // one slack step distributes in 4 ways:
  // starts (0,1,2),(0,1,3),(0,2,3),(1,2,3).
  EXPECT_EQ(count_schedules(g, {}, {}, opts).count, 4u);
}

TEST(EnumerateTest, SubsetCountsUseTransitiveSeparation) {
  Builder b("sep");
  const NodeId in = b.input("in");
  const NodeId x = b.op(OpKind::kAdd, "x", {in, in});
  const NodeId m = b.op(OpKind::kMul, "m", {x});
  const NodeId y = b.op(OpKind::kAdd, "y", {m});
  b.output("o", y);
  const Graph g = std::move(b).build();
  // Subset {x, y} with latency 4: x and y are 2 steps apart through m.
  // x in {0,1}, y in {x+2 .. 3}: (0,2),(0,3),(1,3) = 3.
  EnumerationOptions opts;
  opts.latency = 4;
  const std::vector<NodeId> subset = {g.find("x"), g.find("y")};
  EXPECT_EQ(count_schedules(g, subset, {}, opts).count, 3u);
}

TEST(EnumerateTest, UnsatisfiableConstraintsGiveZero) {
  const Graph g = two_free_ops();
  // Serializing a before b needs 2 steps, but the specification's
  // critical path (the default latency bound) is 1.
  const ExtraPrecedence edge[] = {{g.find("a"), g.find("b")}};
  EXPECT_EQ(count_schedules(g, {}, edge, {}).count, 0u);
}

TEST(EnumerateTest, CyclicExtraConstraintsThrow) {
  const Graph g = two_free_ops();
  const ExtraPrecedence edges[] = {{g.find("a"), g.find("b")},
                                   {g.find("b"), g.find("a")}};
  EnumerationOptions opts;
  opts.latency = 3;
  EXPECT_THROW((void)count_schedules(g, {}, edges, opts), std::runtime_error);
}

TEST(EnumerateTest, SaturationReported) {
  const Graph g = two_free_ops();
  EnumerationOptions opts;
  opts.latency = 3;
  opts.limit = 5;
  const EnumerationResult r = count_schedules(g, {}, {}, opts);
  EXPECT_TRUE(r.saturated);
  EXPECT_EQ(r.count, 5u);
}

TEST(EnumerateTest, EmptySubsetOfDeadNodeThrows) {
  const Graph g = two_free_ops();
  const std::vector<NodeId> bad = {NodeId{999}};
  EXPECT_THROW((void)count_schedules(g, bad, {}, {}), std::out_of_range);
}

TEST(PsiTest, MatchesManualRatio) {
  const Graph g = two_free_ops();
  EnumerationOptions opts;
  opts.latency = 3;
  const PsiCounts psi = psi_counts(g, {}, g.find("a"), g.find("b"), opts);
  EXPECT_EQ(psi.psi_n, 9u);
  EXPECT_EQ(psi.psi_w, 3u);
  EXPECT_FALSE(psi.saturated);
}

TEST(PsiTest, IirSubtreeConstraintsShrinkSolutionSpace) {
  // The motivational example's qualitative claim: watermark constraints
  // cut the subtree's schedule count by an order of magnitude.
  const Graph g = lwm::dfglib::iir4_parallel();
  EnumerationOptions opts;
  opts.latency = cdfg::critical_path_length(g) + 2;
  std::vector<NodeId> subtree;
  for (const char* name : {"C1", "C2", "A1", "A2", "C3", "C4", "A3"}) {
    subtree.push_back(g.find(name));
  }
  const std::uint64_t free_count = count_schedules(g, subtree, {}, opts).count;
  const std::vector<ExtraPrecedence> wm_edges = {
      {g.find("C1"), g.find("C3")},
      {g.find("C2"), g.find("C4")},
  };
  const std::uint64_t marked_count =
      count_schedules(g, subtree, wm_edges, opts).count;
  EXPECT_GT(free_count, 0u);
  EXPECT_GT(marked_count, 0u);
  EXPECT_LT(marked_count * 2, free_count);
}

}  // namespace
}  // namespace lwm::sched
