#include "cdfg/analysis.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <stdexcept>

namespace lwm::cdfg {

std::vector<NodeId> topo_order(const Graph& g, EdgeFilter filter) {
  const std::size_t cap = g.node_capacity();
  std::vector<int> indegree(cap, 0);
  for (NodeId n : g.nodes()) {
    for (EdgeId e : g.fanin(n)) {
      if (filter.accepts(g.edge(e).kind)) ++indegree[n.value];
    }
  }
  std::deque<NodeId> ready;
  for (NodeId n : g.nodes()) {
    if (indegree[n.value] == 0) ready.push_back(n);
  }
  std::vector<NodeId> order;
  order.reserve(g.node_count());
  while (!ready.empty()) {
    const NodeId n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (EdgeId e : g.fanout(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed.kind)) continue;
      if (--indegree[ed.dst.value] == 0) ready.push_back(ed.dst);
    }
  }
  if (order.size() != g.node_count()) {
    throw std::runtime_error("topo_order: precedence relation is cyclic in '" +
                             g.name() + "'");
  }
  return order;
}

TimingInfo compute_timing(const Graph& g, int latency, EdgeFilter filter) {
  const std::size_t cap = g.node_capacity();
  TimingInfo t;
  t.asap.assign(cap, -1);
  t.alap.assign(cap, -1);

  const std::vector<NodeId> order = topo_order(g, filter);

  // ASAP: forward longest path.
  int cp = 0;
  for (NodeId n : order) {
    int start = 0;
    for (EdgeId e : g.fanin(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed.kind)) continue;
      const NodeId p = ed.src;
      start = std::max(start, t.asap[p.value] + g.node(p).delay);
    }
    t.asap[n.value] = start;
    cp = std::max(cp, start + g.node(n).delay);
  }
  t.critical_path = cp;

  if (latency < 0) {
    latency = cp;
  } else if (latency < cp) {
    throw std::invalid_argument(
        "compute_timing: latency " + std::to_string(latency) +
        " below critical path " + std::to_string(cp) + " in '" + g.name() + "'");
  }
  t.latency = latency;

  // ALAP: backward longest path against the latency bound.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    int latest = latency - g.node(n).delay;
    for (EdgeId e : g.fanout(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed.kind)) continue;
      latest = std::min(latest, t.alap[ed.dst.value] - g.node(n).delay);
    }
    t.alap[n.value] = latest;
  }
  return t;
}

int critical_path_length(const Graph& g, EdgeFilter filter) {
  return compute_timing(g, -1, filter).critical_path;
}

BoundedTimingInfo compute_timing_bounded(const Graph& g, int latency,
                                         EdgeFilter filter) {
  BoundedTimingInfo t;
  t.pess = compute_timing(g, latency, filter);  // validates the latency bound

  const std::size_t cap = g.node_capacity();
  t.asap_min.assign(cap, -1);
  t.alap_min.assign(cap, -1);

  const std::vector<NodeId> order = topo_order(g, filter);

  // Optimistic ASAP: forward longest path with every delay at d_min.
  int cp = 0;
  for (NodeId n : order) {
    int start = 0;
    for (EdgeId e : g.fanin(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed.kind)) continue;
      const NodeId p = ed.src;
      start = std::max(start, t.asap_min[p.value] + g.node(p).delay_min);
    }
    t.asap_min[n.value] = start;
    cp = std::max(cp, start + g.node(n).delay_min);
  }
  t.critical_path_min = cp;

  // Optimistic ALAP against the same (pessimistic) latency bound: the
  // latest n could start and still finish by t.pess.latency if every
  // downstream delay realizes at its lower bound.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    int latest = t.pess.latency - g.node(n).delay_min;
    for (EdgeId e : g.fanout(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed.kind)) continue;
      latest = std::min(latest, t.alap_min[ed.dst.value] - g.node(n).delay_min);
    }
    t.alap_min[n.value] = latest;
  }
  return t;
}

std::vector<ConeNode> fanin_cone(const Graph& g, NodeId root, int max_distance,
                                 EdgeFilter filter) {
  if (!g.is_live(root)) {
    throw std::out_of_range("fanin_cone: dead root node");
  }
  // Distances live in a hash map sized to the cone, not a dense O(V)
  // array: a bounded cone is tiny, and detection carves one cone per
  // scanned root — an O(node_capacity) zero-fill per carve is minutes of
  // pure memset on a 1M-node design.
  std::unordered_map<std::uint32_t, int> dist;
  std::deque<NodeId> queue;
  dist.emplace(root.value, 0);
  queue.push_back(root);
  std::vector<ConeNode> cone;
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    const int dn = dist.at(n.value);
    cone.push_back(ConeNode{n, dn});
    if (max_distance >= 0 && dn >= max_distance) continue;
    for (EdgeId e : g.fanin(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed.kind)) continue;
      if (dist.emplace(ed.src.value, dn + 1).second) {
        queue.push_back(ed.src);
      }
    }
  }
  // BFS already yields nondecreasing distance; make (distance, id) exact.
  std::sort(cone.begin(), cone.end(), [](const ConeNode& a, const ConeNode& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.node < b.node;
  });
  return cone;
}

int cone_cardinality(const Graph& g, NodeId n, int x, EdgeFilter filter) {
  const auto cone = fanin_cone(g, n, x, filter);
  return static_cast<int>(cone.size()) - 1;  // exclude n itself
}

long long cone_functional_sum(const Graph& g, NodeId n, int x, EdgeFilter filter) {
  long long sum = 0;
  for (const ConeNode& c : fanin_cone(g, n, x, filter)) {
    sum += functional_id(g.node(c.node).kind);
  }
  return sum;
}

std::vector<int> levels_from(const Graph& g, NodeId root, EdgeFilter filter) {
  if (!g.is_live(root)) {
    throw std::out_of_range("levels_from: dead root node");
  }
  // Longest path over fan-in edges from root: process nodes in reverse
  // topological order (fan-in direction follows edges backwards, so a
  // node's level depends on its fan-out side nodes' levels).
  std::vector<int> level(g.node_capacity(), -1);
  level[root.value] = 0;
  const std::vector<NodeId> order = topo_order(g, filter);
  // Walk from sinks toward sources: reverse topological order guarantees
  // that when we visit n, every consumer of n is finalized.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    for (EdgeId e : g.fanout(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed.kind)) continue;
      if (level[ed.dst.value] >= 0) {
        level[n.value] = std::max(level[n.value], level[ed.dst.value] + 1);
      }
    }
  }
  return level;
}

bool reaches(const Graph& g, NodeId src, NodeId dst, EdgeFilter filter) {
  if (!g.is_live(src) || !g.is_live(dst)) return false;
  if (src == dst) return true;
  std::vector<bool> seen(g.node_capacity(), false);
  std::deque<NodeId> queue{src};
  seen[src.value] = true;
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    for (EdgeId e : g.fanout(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed.kind) || seen[ed.dst.value]) continue;
      if (ed.dst == dst) return true;
      seen[ed.dst.value] = true;
      queue.push_back(ed.dst);
    }
  }
  return false;
}

}  // namespace lwm::cdfg
