#include "tmatch/library_io.h"

#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/source.h"
#include "io/text.h"

namespace lwm::tmatch {

void write_library(const TemplateLibrary& lib, std::ostream& os) {
  os << "templates v1\n";
  for (int i = 0; i < lib.size(); ++i) {
    const Template& t = lib.at(i);
    os << "template " << t.name << " " << t.area << "\n";
    for (const TemplateOp& op : t.ops) {
      os << "op " << cdfg::op_name(op.kind);
      for (const int c : op.children) os << " " << c;
      os << "\n";
    }
  }
}

std::string library_to_text(const TemplateLibrary& lib) {
  std::ostringstream os;
  write_library(lib, os);
  return os.str();
}

io::ParseResult<TemplateLibrary> parse_library(std::string_view text,
                                               std::string_view source_name) {
  TemplateLibrary lib;
  io::LineCursor lines(text);
  const auto err = [&](int line, int col, std::string msg) {
    return io::Diagnostic{std::string(source_name), line, col, std::move(msg)};
  };

  {
    const auto header = lines.next();
    if (!header || *header != "templates v1") {
      return err(header ? 1 : 0, 0, "missing 'templates v1' header");
    }
  }

  Template current;
  bool open = false;
  const auto flush = [&](int at_line) -> std::optional<io::Diagnostic> {
    if (!open) return std::nullopt;
    try {
      lib.add(current);
    } catch (const std::invalid_argument& e) {
      // TemplateLibrary::add validates tree shape (children in range,
      // acyclic, reachable); surface its message at the template's span.
      return err(at_line, 0, e.what());
    }
    current = Template{};
    open = false;
    return std::nullopt;
  };

  while (const auto line = lines.next()) {
    const int lineno = lines.line_number();
    io::LineLexer lx(*line);
    const auto tok = lx.next();
    if (!tok || tok->text[0] == '#') continue;
    if (tok->text == "template") {
      if (const auto d = flush(lineno)) return *d;
      const auto name = lx.next();
      const auto area_tok = lx.next();
      if (!name || !area_tok) {
        return err(lineno, lx.column(), "template needs <name> <area>");
      }
      const auto area = io::to_double(area_tok->text);
      if (!area || *area < 0.0) {
        return err(lineno, area_tok->column,
                   "area must be a non-negative number, got '" +
                       std::string(area_tok->text) + "'");
      }
      if (!lx.at_end()) {
        return err(lineno, lx.column(), "trailing garbage after area");
      }
      current.name = std::string(name->text);
      current.area = *area;
      open = true;
    } else if (tok->text == "op") {
      if (!open) return err(lineno, tok->column, "op before any template header");
      const auto kind_name = lx.next();
      if (!kind_name) return err(lineno, lx.column(), "op needs a kind");
      const auto kind = cdfg::op_from_name(kind_name->text);
      if (!kind) {
        return err(lineno, kind_name->column,
                   "unknown op kind '" + std::string(kind_name->text) + "'");
      }
      TemplateOp op;
      op.kind = *kind;
      while (const auto child = lx.next()) {
        const auto v = io::to_int(child->text);
        if (!v) {
          return err(lineno, child->column,
                     "child indices must be integers, got '" +
                         std::string(child->text) + "'");
        }
        op.children.push_back(*v);
      }
      current.ops.push_back(std::move(op));
    } else {
      return err(lineno, tok->column,
                 "unknown directive '" + std::string(tok->text) + "'");
    }
  }
  if (const auto d = flush(lines.line_number())) return *d;
  return lib;
}

TemplateLibrary read_library(std::istream& is) {
  auto text = io::read_stream(is, "<library>");
  if (!text) throw io::ParseError(text.diag());
  return parse_library(text.value(), "<library>").take_or_throw();
}

TemplateLibrary library_from_text(const std::string& text) {
  return parse_library(text, "<library>").take_or_throw();
}

}  // namespace lwm::tmatch
