file(REMOVE_RECURSE
  "liblwm_wm.a"
)
