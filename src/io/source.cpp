#include "io/source.h"

#include <fstream>
#include <istream>

namespace lwm::io {

ParseResult<std::string> read_stream(std::istream& is,
                                     std::string_view source_name,
                                     const ReadLimits& limits) {
  std::string out;
  char buf[64 * 1024];
  while (is) {
    is.read(buf, sizeof buf);
    const std::size_t got = static_cast<std::size_t>(is.gcount());
    if (got > limits.max_bytes - out.size()) {
      return Diagnostic{
          std::string(source_name), 0, 0,
          "input exceeds the " + std::to_string(limits.max_bytes) +
              "-byte whole-file cap (io::ReadLimits::max_bytes); large CDFG "
              "graph files should use the streaming parser "
              "(cdfg::read_cdfg_file / cdfg::parse_cdfg_stream), which reads "
              "a line window instead of buffering the file"};
    }
    out.append(buf, got);
  }
  if (is.bad()) {
    return Diagnostic{std::string(source_name), 0, 0, "read error"};
  }
  return out;
}

ParseResult<std::string> read_file(const std::string& path,
                                   const ReadLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Diagnostic{path, 0, 0, "cannot open file"};
  }
  return read_stream(in, path, limits);
}

}  // namespace lwm::io
