// bench_robustness — detection robustness under structural tampering,
// plus fingerprint-based leak identification.
//
// Two studies beyond the paper's evaluation (both directions it argues
// qualitatively):
//   1. decoy insertion: the adversary splices dummy unit operations into
//      idle slots (free in schedule quality) to deform the localities
//      the detector re-derives; we sweep the decoy count and measure
//      how many of the vendor's local watermarks stay detectable.
//   2. fingerprinting: three licensed copies of one core, each carrying
//      recipient-keyed copy marks; one leaks; the audit scores every
//      candidate and must single out the true leaker.
#include <cstdio>
#include <vector>

#include "bench_io.h"
#include "cdfg/normalize.h"
#include "dfglib/synth.h"
#include "exec/thread_pool.h"
#include "sched/list_sched.h"
#include "table.h"
#include "wm/attack.h"
#include "wm/fingerprint.h"

using namespace lwm;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv, "BENCH_robustness.json");
  const bench::Stopwatch wall;
  exec::ThreadPool pool(args.threads);
  exec::ThreadPool* parallel = args.threads > 1 ? &pool : nullptr;
  std::printf("== Robustness: decoy insertion & leak identification ==\n\n");

  const crypto::Signature vendor("vendor", "robustness-bench-key");

  // ---- decoy sweep ----------------------------------------------------------
  std::printf("decoy-insertion attack (8 local watermarks, 300-op core):\n");
  std::printf("(naive = detect on the tampered graph; normalized = detector\n");
  std::printf(" collapses transparent unit ops first — cdfg::normalize_unit_ops)\n");
  bench::Table decoy_table(
      {"decoys inserted", "ops changed", "detected naive", "detected normalized"});
  int detected_clean = 0, marks_total = 0;
  const std::vector<int> decoy_counts =
      args.smoke ? std::vector<int>{0, 15} : std::vector<int>{0, 5, 15, 40, 100};
  for (const int decoys : decoy_counts) {
    cdfg::Graph g = dfglib::make_dsp_design("robust_core", 16,
                                            args.smoke ? 100 : 300, 4848);
    wm::SchedWmOptions opts;
    opts.domain.tau = 6;
    opts.k = 4;
    opts.min_edges = 2;
    opts.epsilon = 0.3;
    const auto marks = wm::embed_local_watermarks(g, vendor, 8, opts);
    std::vector<wm::SchedRecord> records;
    for (const auto& m : marks) records.push_back(wm::SchedRecord::from(m, g));
    sched::Schedule s = sched::list_schedule(g);
    g.strip_temporal_edges();

    const auto inserted = wm::insert_decoys(g, s, decoys, 99);
    int naive = 0;
    for (const auto& rec : records) {
      naive += wm::detect_sched_watermark(g, s, vendor, rec, parallel).detected();
    }
    cdfg::Graph canon = g;
    (void)cdfg::normalize_unit_ops(canon);
    int normalized = 0;
    for (const auto& rec : records) {
      normalized +=
          wm::detect_sched_watermark(canon, s, vendor, rec, parallel).detected();
    }
    if (decoys == 0) {
      detected_clean = naive;
      marks_total = static_cast<int>(records.size());
    }
    decoy_table.add_row(
        {bench::fmt_int(decoys),
         bench::fmt("%.1f%%", 100.0 * static_cast<double>(inserted.size()) /
                                  static_cast<double>(g.operation_count())),
         bench::fmt_int(naive) + "/" +
             bench::fmt_int(static_cast<long long>(records.size())),
         bench::fmt_int(normalized) + "/" +
             bench::fmt_int(static_cast<long long>(records.size()))});
  }
  decoy_table.print();

  // ---- fingerprinting --------------------------------------------------------
  std::printf("\nleak identification (3 licensed copies, copy 'beta' leaks):\n");
  const cdfg::Graph core =
      dfglib::make_dsp_design("licensed_core", 14, args.smoke ? 100 : 240, 4949);
  wm::FingerprintOptions fopts;
  fopts.wm.domain.tau = 8;
  fopts.wm.k = 5;
  fopts.wm.min_edges = 3;
  fopts.wm.epsilon = 0.3;
  std::vector<wm::FingerprintedCopy> copies;
  for (const char* r : {"alpha", "beta", "gamma"}) {
    copies.push_back(wm::fingerprint_copy(core, vendor, r, fopts));
  }
  const wm::LeakReport report =
      wm::identify_leak(copies[1].design, copies[1].schedule, vendor, copies);

  bench::Table leak_table({"recipient", "copy marks found"});
  for (const auto& score : report.scores) {
    leak_table.add_row({score.recipient,
                        bench::fmt_int(score.marks_found) + "/" +
                            bench::fmt_int(score.marks_total)});
  }
  leak_table.print();
  std::printf("ownership established: %s; likely leaker: %s\n",
              report.ownership_established ? "yes" : "no",
              report.likely_leaker() != nullptr
                  ? report.likely_leaker()->recipient.c_str()
                  : "(none)");

  std::printf("\nshape checks:\n");
  std::printf("  * detection degrades gracefully with decoy volume; light "
              "obfuscation leaves most marks\n");
  std::printf("  * the leaking recipient's score dominates the others\n");

  bench::JsonObject json;
  json.add("bench", std::string("robustness"));
  json.add("threads", args.threads);
  json.add("marks_total", marks_total);
  json.add("detected_clean", detected_clean);
  json.add("ownership_established", report.ownership_established ? 1 : 0);
  json.add("likely_leaker",
           report.likely_leaker() != nullptr ? report.likely_leaker()->recipient
                                             : std::string("(none)"));
  json.add("wall_ms", wall.elapsed_ms());
  bench::attach_obs(json, args);
  return json.write(args.json_path) ? 0 : 1;
}
