// service.h — the transport-independent request handler.
//
// One Service instance owns the DesignStore and answers decoded frames;
// the socket server (server.h), the bulk scanner (`lwm-scan` without
// `--socket`), the integration tests, and the fuzz target all drive the
// same handle() — the protocol has exactly one semantics implementation
// just as it has one codec.
//
// Contract: handle() NEVER throws and never crashes on any input frame.
// Every failure — unknown type, malformed payload, malformed embedded
// artifact, missing design, out-of-bounds parameter, unexpected
// exception — becomes a kError frame carrying an ErrorCode plus the
// same io::Diagnostic shape the text parsers emit.  handle() is safe to
// call from many threads at once (the store is sharded; everything else
// per-request).
#pragma once

#include <cstdint>
#include <string_view>

#include "serve/design_store.h"
#include "serve/frame.h"

namespace lwm::exec {
class ThreadPool;
}

namespace lwm::serve {

struct ServiceOptions {
  /// Pool the heavy requests (embed planning waves, detector root scan)
  /// fan out over; nullptr = serial.  Not owned.
  exec::ThreadPool* pool = nullptr;
  DesignStoreOptions store;

  // Parameter bounds enforced on embed/pc requests (kErrTooLarge).
  std::uint32_t max_marks = 4096;
  std::uint32_t max_k = 64;
  std::uint32_t max_tau = 32;
};

class Service {
 public:
  explicit Service(ServiceOptions opts = {});

  /// Answers one request frame.  Never throws.
  [[nodiscard]] Frame handle(const Frame& request);

  /// Decode-then-handle convenience for callers holding raw bytes (the
  /// fuzz target and `lwm-scan`): a frame that fails to decode gets the
  /// kErrBadFrame error frame the server would send.  Partial frames
  /// (kNeedMore) are reported as kErrBadFrame too — this entry point is
  /// for whole captured frames, not for stream reassembly.
  [[nodiscard]] Frame handle_bytes(std::string_view bytes);

  [[nodiscard]] DesignStore& store() noexcept { return store_; }
  [[nodiscard]] const ServiceOptions& options() const noexcept { return opts_; }

 private:
  [[nodiscard]] Frame dispatch(const Frame& request);
  [[nodiscard]] Frame handle_load_design(const Frame& request);
  [[nodiscard]] Frame handle_load_schedule(const Frame& request);
  [[nodiscard]] Frame handle_embed(const Frame& request);
  [[nodiscard]] Frame handle_detect(const Frame& request);
  [[nodiscard]] Frame handle_pc(const Frame& request);
  [[nodiscard]] Frame handle_stats(const Frame& request);
  [[nodiscard]] Frame handle_evict(const Frame& request);

  ServiceOptions opts_;
  DesignStore store_;
};

}  // namespace lwm::serve
