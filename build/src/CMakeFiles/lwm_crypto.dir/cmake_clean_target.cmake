file(REMOVE_RECURSE
  "liblwm_crypto.a"
)
