file(REMOVE_RECURSE
  "CMakeFiles/sched_test.dir/sched/bnb_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/bnb_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/enumerate_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/enumerate_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/force_directed_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/force_directed_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/list_sched_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/list_sched_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/min_units_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/min_units_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/schedule_io_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/schedule_io_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/schedule_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/schedule_test.cpp.o.d"
  "sched_test"
  "sched_test.pdb"
  "sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
