// AVX2 refill kernel.  This TU is compiled with -mavx2 -ffp-contract=off
// (and only this TU — the rest of the library stays baseline-ISA) and is
// entered solely through select_refill_fn's cpuid check.
//
// Vectorization is *across t*: four window steps advance through the
// identical scalar operation sequence in four lanes.  Each lane performs
// exactly the scalar kernel's mul/add sequence — intrinsics are explicit
// _mm256_mul_pd/_mm256_add_pd so nothing can contract to FMA — which is
// what makes the SIMD schedule bit-identical to the scalar (and
// reference) one.
//
// Structure: two passes.  Pass 1 writes the self term of every t into
// out[]; pass 2 accumulates one neighbor term at a time into out[].
// Per t that is self first, then neighbors in hot[] order — the scalar
// add order.  Within a pass the delay-1 fast paths split the s sweep
// into segments where no lane needs a mask: a fan-in edge only moves a
// neighbor's right clip bound and a fan-out edge only its left one
// (window invariants, see fds_kernels.h), both monotone in t, so the
// zone where lanes disagree is at most 3 steps per boundary.  Lanes
// whose clipped window is empty take q_in := q_out (their partial is
// replaced by 1e9 in the final blend, so any finite value works, and
// matching q_out keeps the uniform segments lane-consistent); blocks
// where every lane is infeasible skip the sweep and add 1e9 directly.
#include "sched/fds_kernels.h"

#if defined(LWM_SIMD_AVX2)

#include <immintrin.h>

#include <cstdint>
#include <cstring>

namespace lwm::sched::fds {

namespace {

inline __m256d madd(__m256d acc, double scalar, __m256d q) {
  return _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(scalar), q));
}

inline __m256d load_partial(const double* p, int lanes) {
  alignas(32) double buf[4] = {0.0, 0.0, 0.0, 0.0};
  std::memcpy(buf, p, sizeof(double) * static_cast<std::size_t>(lanes));
  return _mm256_load_pd(buf);
}

inline void store_partial(double* p, __m256d v, int lanes) {
  alignas(32) double buf[4];
  _mm256_store_pd(buf, v);
  std::memcpy(p, buf, sizeof(double) * static_cast<std::size_t>(lanes));
}

}  // namespace

void refill_force_avx2(const double* srow, int lo, int hi, int delay,
                       int latency, const double* inv_len, const HotNb* hot,
                       std::size_t nhot, double* out) {
  const double p_old = inv_len[hi - lo + 1];
  const __m256d v_d_at = _mm256_set1_pd(1.0 - p_old);
  const __m256d v_d_off = _mm256_set1_pd(0.0 - p_old);
  const __m256d v_1e9 = _mm256_set1_pd(1e9);

  // ---- Pass 1: self term into out[] ------------------------------------
  for (int t0 = lo; t0 <= hi; t0 += 4) {
    const int lanes = hi - t0 + 1 < 4 ? hi - t0 + 1 : 4;
    __m256d acc = _mm256_setzero_pd();
    if (delay == 1) {
      // Lanes only disagree for s in [t0, t0+3] (delta is d_at on the
      // lane whose t equals s); outside that zone every lane uses d_off.
      int s = lo;
      for (; s < t0; ++s) acc = madd(acc, srow[s], v_d_off);
      const int tend = t0 + 3 < hi ? t0 + 3 : hi;
      const __m256i vt = _mm256_set_epi64x(t0 + 3, t0 + 2, t0 + 1, t0);
      for (; s <= tend; ++s) {
        const __m256d at_mask = _mm256_castsi256_pd(
            _mm256_cmpeq_epi64(_mm256_set1_epi64x(s), vt));
        acc = madd(acc, srow[s], _mm256_blendv_pd(v_d_off, v_d_at, at_mask));
      }
      for (; s <= hi; ++s) acc = madd(acc, srow[s], v_d_off);
    } else {
      const __m256i vt = _mm256_set_epi64x(t0 + 3, t0 + 2, t0 + 1, t0);
      for (int s = lo; s <= hi; ++s) {
        const __m256d at_mask = _mm256_castsi256_pd(
            _mm256_cmpeq_epi64(_mm256_set1_epi64x(s), vt));
        const __m256d delta = _mm256_blendv_pd(v_d_off, v_d_at, at_mask);
        for (int d = 0; d < delay; ++d) {
          acc = madd(acc, srow[static_cast<std::size_t>(s + d)], delta);
        }
      }
    }
    if (lanes == 4) {
      _mm256_storeu_pd(out + (t0 - lo), acc);
    } else {
      store_partial(out + (t0 - lo), acc, lanes);
    }
  }

  // ---- Pass 2: one neighbor term at a time into out[] -------------------
  for (std::size_t i = 0; i < nhot; ++i) {
    const HotNb& h = hot[i];
    const double q_out = 0.0 - h.p_old;
    const __m256d vqout = _mm256_set1_pd(q_out);

    for (int t0 = lo; t0 <= hi; t0 += 4) {
      const int lanes = hi - t0 + 1 < 4 ? hi - t0 + 1 : 4;
      double* ob = out + (t0 - lo);
      const __m256d prev =
          lanes == 4 ? _mm256_loadu_pd(ob) : load_partial(ob, lanes);

      // All-infeasible block: the scalar kernel adds exactly 1e9 per
      // lane and never touches the dg row.  Feasibility is monotone in
      // t (pred: t - h.delay >= mlo; succ: t + delay <= mhi), so one
      // bound check covers the whole block.
      const bool all_inf = h.pred ? (t0 + 3 < h.mlo + h.delay)
                                  : (t0 > h.mhi - delay);
      if (all_inf) {
        const __m256d sum = _mm256_add_pd(prev, v_1e9);
        if (lanes == 4) {
          _mm256_storeu_pd(ob, sum);
        } else {
          store_partial(ob, sum, lanes);
        }
        continue;
      }

      // Per-lane clipped bounds + q_in, set up in scalar code.
      alignas(32) std::int64_t nlo[4], nhi[4];
      alignas(32) double qin[4];
      bool any_inf = false;
      for (int j = 0; j < 4; ++j) {
        const int t = t0 + j;
        const int new_lo =
            h.pred ? h.mlo : (t + delay > h.mlo ? t + delay : h.mlo);
        const int new_hi =
            h.pred ? (t - h.delay < h.mhi ? t - h.delay : h.mhi) : h.mhi;
        nlo[j] = new_lo;
        nhi[j] = new_hi;
        if (new_lo <= new_hi) {
          qin[j] = inv_len[new_hi - new_lo + 1] - h.p_old;
        } else {
          qin[j] = q_out;
          any_inf = true;
        }
      }
      const __m256i vnlo =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(nlo));
      const __m256i vnhi =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(nhi));
      const __m256d vqin = _mm256_load_pd(qin);

      __m256d facc = _mm256_setzero_pd();
      if (h.delay == 1) {
        if (h.pred) {
          // In-range is [mlo, nhi_j], nhi monotone nondecreasing across
          // lanes.  Lane 3 (largest t) is feasible — all-infeasible was
          // handled above — so nhi[3] is the last in-range step of any
          // lane.  min_feas is the first feasible lane's nhi; below it
          // every feasible lane is in range (infeasible lanes' q_in ==
          // q_out keeps the maskless segment lane-consistent).
          int jf = 0;
          while (nhi[jf] < h.mlo) ++jf;  // terminates: lane 3 feasible
          const int min_feas = static_cast<int>(nhi[jf]);
          const int max_all = static_cast<int>(nhi[3]);
          int s = h.mlo;
          const int up_in = min_feas < h.mhi ? min_feas : h.mhi;
          for (; s <= up_in; ++s) facc = madd(facc, h.row[s], vqin);
          const int up_mix = max_all < h.mhi ? max_all : h.mhi;
          for (; s <= up_mix; ++s) {
            const __m256d out_mask = _mm256_castsi256_pd(
                _mm256_cmpgt_epi64(_mm256_set1_epi64x(s), vnhi));
            facc =
                madd(facc, h.row[s], _mm256_blendv_pd(vqin, vqout, out_mask));
          }
          for (; s <= h.mhi; ++s) facc = madd(facc, h.row[s], vqout);
        } else {
          // In-range is [nlo_j, mhi], nlo monotone nondecreasing across
          // lanes.  Lane 0 (smallest t) is feasible, so nlo[0] is the
          // first in-range step of any lane; past the last feasible
          // lane's nlo every feasible lane is in range.
          int jl = 3;
          while (nlo[jl] > h.mhi) --jl;  // terminates: lane 0 feasible
          const int min_all = static_cast<int>(nlo[0]);
          const int max_feas = static_cast<int>(nlo[jl]);
          int s = h.mlo;
          const int up_out = min_all - 1 < h.mhi ? min_all - 1 : h.mhi;
          for (; s <= up_out; ++s) facc = madd(facc, h.row[s], vqout);
          const int up_mix = max_feas - 1 < h.mhi ? max_feas - 1 : h.mhi;
          for (; s <= up_mix; ++s) {
            const __m256d out_mask = _mm256_castsi256_pd(
                _mm256_cmpgt_epi64(vnlo, _mm256_set1_epi64x(s)));
            facc =
                madd(facc, h.row[s], _mm256_blendv_pd(vqin, vqout, out_mask));
          }
          for (; s <= h.mhi; ++s) facc = madd(facc, h.row[s], vqin);
        }
      } else {
        for (int s = h.mlo; s <= h.mhi; ++s) {
          const __m256i vs = _mm256_set1_epi64x(s);
          const __m256d out_mask = _mm256_castsi256_pd(
              _mm256_or_si256(_mm256_cmpgt_epi64(vnlo, vs),    // s < new_lo
                              _mm256_cmpgt_epi64(vs, vnhi)));  // s > new_hi
          const __m256d q = _mm256_blendv_pd(vqin, vqout, out_mask);
          for (int d = 0; d < h.delay; ++d) {
            facc = madd(facc, h.row[static_cast<std::size_t>(s + d)], q);
          }
        }
      }

      // Infeasible lanes contribute exactly 1e9 in place of their
      // partial, matching the scalar early-continue.
      __m256d term = facc;
      if (any_inf) {
        const __m256d inf_mask =
            _mm256_castsi256_pd(_mm256_cmpgt_epi64(vnlo, vnhi));
        term = _mm256_blendv_pd(facc, v_1e9, inf_mask);
      }
      const __m256d sum = _mm256_add_pd(prev, term);
      if (lanes == 4) {
        _mm256_storeu_pd(ob, sum);
      } else {
        store_partial(ob, sum, lanes);
      }
    }
  }
  (void)latency;
}

}  // namespace lwm::sched::fds

#endif  // LWM_SIMD_AVX2
