# Empty dependencies file for lwm_regbind.
# This may be replaced when dependencies are built.
