// table.h — tiny fixed-width table printer shared by the bench binaries.
//
// Every bench prints (a) the paper's published numbers where they exist
// and (b) our measured numbers side by side, so EXPERIMENTS.md can quote
// the output verbatim.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace lwm::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    auto rule = [&] {
      std::string line = "+";
      for (const std::size_t w : width) line += std::string(w + 2, '-') + "+";
      std::printf("%s\n", line.c_str());
    };
    auto emit = [&](const std::vector<std::string>& cells) {
      std::string line = "|";
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& v = c < cells.size() ? cells[c] : std::string();
        line += " " + v + std::string(width[c] - v.size(), ' ') + " |";
      }
      std::printf("%s\n", line.c_str());
    };
    rule();
    emit(headers_);
    rule();
    for (const auto& row : rows_) emit(row);
    rule();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

}  // namespace lwm::bench
