#include "sched/list_sched.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace lwm::sched {

using cdfg::EdgeId;
using cdfg::Graph;
using cdfg::NodeId;

Schedule list_schedule(const Graph& g, const ListScheduleOptions& opts) {
  const cdfg::TimingInfo timing = cdfg::compute_timing(g, -1, opts.filter);

  // Priority: longest path to sink == latency - alap (larger first).
  auto priority = [&](NodeId n) { return timing.latency - timing.alap[n.value]; };

  // Precedence bookkeeping restricted to executable nodes; pseudo-ops are
  // transparent (their deps propagate with zero delay).
  std::vector<int> pending(g.node_capacity(), 0);
  std::vector<int> earliest(g.node_capacity(), 0);
  std::vector<NodeId> ready;

  for (NodeId n : g.nodes()) {
    int deps = 0;
    for (EdgeId e : g.fanin(n)) {
      if (opts.filter.accepts(g.edge(e))) ++deps;
    }
    pending[n.value] = deps;
  }

  Schedule sched(g);
  auto release = [&](NodeId n, int finish_step, auto&& self) -> void {
    // Called when n's result is available at `finish_step`.
    for (EdgeId e : g.fanout(n)) {
      const cdfg::Edge& ed = g.edge(e);
      if (!opts.filter.accepts(ed)) continue;
      earliest[ed.dst.value] = std::max(earliest[ed.dst.value], finish_step);
      if (--pending[ed.dst.value] == 0) {
        const cdfg::Node& dnode = g.node(ed.dst);
        if (cdfg::is_executable(dnode.kind)) {
          ready.push_back(ed.dst);
        } else {
          // Transparent pseudo-op: propagate immediately.
          self(ed.dst, earliest[ed.dst.value], self);
        }
      }
    }
  };

  // Seed with zero-dependency nodes.  Snapshot first: a release cascade
  // may drop another node's pending to zero mid-loop, and that node is
  // then enqueued by the cascade itself — re-enqueueing it here would
  // double-schedule it.
  const std::vector<int> initial_pending = pending;
  for (NodeId n : g.nodes()) {
    if (initial_pending[n.value] != 0) continue;
    if (cdfg::is_executable(g.node(n).kind)) {
      ready.push_back(n);
    } else if (g.fanout(n).size() > 0) {
      release(n, 0, release);
    }
  }

  // Validate that limited classes have capacity for the ops present.
  for (NodeId n : g.nodes()) {
    const cdfg::Node& node = g.node(n);
    if (!cdfg::is_executable(node.kind)) continue;
    const cdfg::UnitClass uc = cdfg::unit_class(node.kind);
    if (opts.resources.is_limited(uc) && opts.resources.count(uc) == 0) {
      throw std::invalid_argument(
          "list_schedule: zero units for class required by '" + node.name + "'");
    }
  }

  std::size_t scheduled = 0;
  std::size_t total_ops = g.operation_count();
  // Multi-cycle ops occupy their unit for `delay` steps; track busy units.
  struct Busy {
    int until;  // first step the unit is free again
    cdfg::UnitClass cls;
  };
  std::vector<Busy> busy;

  int step = 0;
  const int kMaxSteps = static_cast<int>(total_ops) * 4 + timing.latency + 16;
  while (scheduled < total_ops) {
    if (step > kMaxSteps) {
      throw std::logic_error("list_schedule: no progress (internal error)");
    }
    // Units freed at this step.
    std::array<int, cdfg::kNumUnitClasses> in_use{};
    for (const Busy& b : busy) {
      if (b.until > step) ++in_use[static_cast<std::size_t>(b.cls)];
    }
    busy.erase(std::remove_if(busy.begin(), busy.end(),
                              [step](const Busy& b) { return b.until <= step; }),
               busy.end());

    // Candidates whose data is available at this step, best priority first.
    std::vector<NodeId> candidates;
    for (NodeId n : ready) {
      if (earliest[n.value] <= step) candidates.push_back(n);
    }
    std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
      const int pa = priority(a);
      const int pb = priority(b);
      if (pa != pb) return pa > pb;
      if (timing.alap[a.value] != timing.alap[b.value]) {
        return timing.alap[a.value] < timing.alap[b.value];
      }
      return a < b;
    });

    for (NodeId n : candidates) {
      const cdfg::Node& node = g.node(n);
      const cdfg::UnitClass uc = cdfg::unit_class(node.kind);
      const auto uci = static_cast<std::size_t>(uc);
      if (opts.resources.is_limited(uc) &&
          in_use[uci] >= opts.resources.count(uc)) {
        continue;  // class full this step
      }
      // Occupancy mirrors verify_schedule's model exactly: a pipelined
      // unit is held for the issue step only (until = step + 1), a
      // non-pipelined one for the op's full d_max latency (until =
      // step + delay) — while the *dependence* release below always
      // waits the full latency, pipelined or not.  One deliberate
      // asymmetry: a delay-0 op charges this step's in_use slot here
      // even though the verifier charges an empty interval for it —
      // conservative in the legal direction (never oversubscribes).
      ++in_use[uci];
      sched.set_start(n, step);
      busy.push_back(Busy{
          step + (opts.pipelined_units ? 1 : node.delay), uc});
      ready.erase(std::remove(ready.begin(), ready.end(), n), ready.end());
      ++scheduled;
      release(n, step + node.delay, release);
    }
    ++step;
  }
  return sched;
}

}  // namespace lwm::sched
