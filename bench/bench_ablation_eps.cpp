// bench_ablation_eps — sweeps the laxity margin epsilon.
//
// Fig. 2's filter admits a node only if its laxity stays below
// C * (1 - epsilon): larger epsilon keeps the watermark further from the
// critical path (less timing overhead) but shrinks the candidate pool
// T' (fewer, weaker constraints).  This bench quantifies that tradeoff —
// the design decision DESIGN.md calls out.
#include <cstdio>
#include <vector>

#include "bench_io.h"
#include "cdfg/analysis.h"
#include "dfglib/synth.h"
#include "table.h"
#include "wm/protocol.h"

using namespace lwm;

int main(int argc, char** argv) {
  const bench::Args args =
      bench::parse_args(argc, argv, "BENCH_ablation_eps.json");
  const bench::Stopwatch wall;
  std::printf("== Ablation: epsilon (laxity margin) vs candidate pool and "
              "overhead ==\n\n");

  const crypto::Signature author("author", "ablation-eps-key");
  const cdfg::Graph g =
      dfglib::make_dsp_design("ablate_eps", 16, args.smoke ? 90 : 260, 4444);
  const cdfg::TimingInfo timing =
      cdfg::compute_timing(g, -1, cdfg::EdgeFilter::specification());

  bench::Table t({"epsilon", "laxity bound", "qualified ops", "watermarks",
                  "edges", "log10 Pc", "latency OH (2 ALU/1 MUL)"});
  double last_pc = 0.0;
  const std::vector<double> eps_values =
      args.smoke ? std::vector<double>{0.3}
                 : std::vector<double>{0.1, 0.2, 0.3, 0.5, 0.7};
  for (const double eps : eps_values) {
    // Pool size: executable ops passing the laxity filter design-wide.
    const double bound = timing.critical_path * (1.0 - eps);
    int qualified = 0;
    for (const cdfg::NodeId n : g.node_ids()) {
      if (cdfg::is_executable(g.node(n).kind) && timing.laxity(n) <= bound) {
        ++qualified;
      }
    }

    wm::SchedProtocolConfig cfg;
    cfg.wm.domain.tau = 6;
    cfg.wm.k = 4;
    cfg.wm.epsilon = eps;
    cfg.watermark_count = 4;
    cfg.resources = sched::ResourceSet::datapath(2, 1);
    const wm::SchedProtocolResult r = wm::run_sched_protocol(g, author, cfg);
    int edges = 0;
    for (const auto& m : r.marks) edges += static_cast<int>(m.constraints.size());
    last_pc = r.pc.log10_pc;

    t.add_row({bench::fmt("%.1f", eps), bench::fmt("%.1f", bound),
               bench::fmt_int(qualified),
               bench::fmt_int(static_cast<long long>(r.marks.size())),
               bench::fmt_int(edges), bench::fmt("%.2f", r.pc.log10_pc),
               bench::fmt("%.2f%%", 100 * r.latency_overhead())});
  }
  t.print();

  std::printf("\nshape checks:\n");
  std::printf("  * the qualified pool shrinks monotonically with epsilon\n");
  std::printf("  * large epsilon starves the watermark (fewer edges, weaker "
              "proof) but keeps overhead at zero\n");

  bench::JsonObject json;
  json.add("bench", std::string("ablation_eps"));
  json.add("threads", args.threads);
  json.add("ops", static_cast<long long>(g.operation_count()));
  json.add("eps_values", static_cast<long long>(eps_values.size()));
  json.add("log10_pc_at_max_eps", last_pc);
  json.add("wall_ms", wall.elapsed_ms());
  bench::attach_obs(json, args);
  return json.write(args.json_path) ? 0 : 1;
}
