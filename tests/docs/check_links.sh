#!/usr/bin/env bash
# docs-check: fail on dead *relative* links in the repo's markdown.
# Scans every tracked-location .md (skipping build trees and .git),
# extracts [text](target) links, and requires each relative target to
# exist on disk, resolved against the file's own directory.  External
# schemes and pure #anchors are skipped — this guards the file tree, not
# the web.
#
# Usage: check_links.sh <repo-root>
set -u

ROOT="$1"
status=0

while IFS= read -r md; do
  dir=$(dirname "$md")
  # Inline links: capture the (...) target of every [...](...).
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    # Strip any #anchor and surrounding whitespace.
    path="${target%%#*}"
    path="$(echo "$path" | sed 's/^ *//; s/ *$//')"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "dead link in $md: ($target)"
      status=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$md" 2>/dev/null | sed 's/^.*](\(.*\))$/\1/')
done < <(find "$ROOT" -name '*.md' \
           -not -path '*/build/*' -not -path '*/build-*/*' \
           -not -path '*/.git/*' -not -path '*/related/*' \
           -not -name 'PAPERS.md' -not -name 'SNIPPETS.md' \
           -not -name 'ISSUE.md')
# PAPERS.md / SNIPPETS.md / ISSUE.md are externally generated digests
# whose pdf-extraction artifacts and code snippets false-positive as
# markdown links; they are not part of the maintained doc tree.

if [ "$status" -eq 0 ]; then
  echo "PASS: no dead relative links"
fi
exit $status
