file(REMOVE_RECURSE
  "CMakeFiles/lwm_cdfg.dir/cdfg/analysis.cpp.o"
  "CMakeFiles/lwm_cdfg.dir/cdfg/analysis.cpp.o.d"
  "CMakeFiles/lwm_cdfg.dir/cdfg/builder.cpp.o"
  "CMakeFiles/lwm_cdfg.dir/cdfg/builder.cpp.o.d"
  "CMakeFiles/lwm_cdfg.dir/cdfg/dot.cpp.o"
  "CMakeFiles/lwm_cdfg.dir/cdfg/dot.cpp.o.d"
  "CMakeFiles/lwm_cdfg.dir/cdfg/graph.cpp.o"
  "CMakeFiles/lwm_cdfg.dir/cdfg/graph.cpp.o.d"
  "CMakeFiles/lwm_cdfg.dir/cdfg/normalize.cpp.o"
  "CMakeFiles/lwm_cdfg.dir/cdfg/normalize.cpp.o.d"
  "CMakeFiles/lwm_cdfg.dir/cdfg/op.cpp.o"
  "CMakeFiles/lwm_cdfg.dir/cdfg/op.cpp.o.d"
  "CMakeFiles/lwm_cdfg.dir/cdfg/serialize.cpp.o"
  "CMakeFiles/lwm_cdfg.dir/cdfg/serialize.cpp.o.d"
  "CMakeFiles/lwm_cdfg.dir/cdfg/stats.cpp.o"
  "CMakeFiles/lwm_cdfg.dir/cdfg/stats.cpp.o.d"
  "CMakeFiles/lwm_cdfg.dir/cdfg/subgraph.cpp.o"
  "CMakeFiles/lwm_cdfg.dir/cdfg/subgraph.cpp.o.d"
  "CMakeFiles/lwm_cdfg.dir/cdfg/validate.cpp.o"
  "CMakeFiles/lwm_cdfg.dir/cdfg/validate.cpp.o.d"
  "liblwm_cdfg.a"
  "liblwm_cdfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwm_cdfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
