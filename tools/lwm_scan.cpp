// lwm_scan — bulk watermark scan over a directory of suspect designs.
//
//   lwm-scan <dir> --key KEY [--records FILE] [--threads N]
//            [--socket PATH] [--json PATH]
//   lwm-scan --make-corpus <dir> --designs N --key KEY
//            [--ops N] [--marks N] [--seed S] [--threads N]
//
// Scan mode: every `<stem>.cdfg` in the directory is loaded, paired
// with `<stem>.sched` (or a locally computed ASAP schedule when the
// file is absent) and `<stem>.lwm` records (or the global `--records`
// archive), and run through the batched detector.  Files are sharded
// across the `lwm::exec` pool; results are merged in file order, so the
// report is bit-identical at any thread count.  Exit status 0 iff every
// record of every design was detected.
//
// Every request — in-process by default, or against a running
// `lwm-serve` daemon with `--socket` — is encoded and decoded through
// the serve codec (src/serve/frame.h), so the wire format has exactly
// one implementation.
//
// Corpus mode (`--make-corpus`) generates a deterministic scan corpus
// by driving the same protocol: per design, a synthetic CDFG is loaded
// and an embed request returns the records and the marked ASAP
// schedule, which are written alongside the design text.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cdfg/analysis.h"
#include "cdfg/serialize.h"
#include "dfglib/synth.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "io/source.h"
#include "io/text.h"
#include "sched/schedule.h"
#include "sched/schedule_io.h"
#include "serve/server.h"
#include "serve/service.h"

namespace fs = std::filesystem;
using lwm::serve::Frame;
using lwm::serve::MsgType;
using lwm::serve::PayloadReader;
using lwm::serve::PayloadWriter;

namespace {

// --- Request builders (the protocol examples in docs/service.md) -------

Frame make_load_design(std::string_view text) {
  PayloadWriter w;
  w.put_str(text);
  return Frame{MsgType::kLoadDesign, std::move(w).take()};
}

Frame make_load_schedule(std::uint64_t design_id, std::string_view text) {
  PayloadWriter w;
  w.put_u64(design_id);
  w.put_str(text);
  return Frame{MsgType::kLoadSchedule, std::move(w).take()};
}

Frame make_detect(std::uint64_t design_id, std::uint64_t sched_id,
                  std::string_view key, std::string_view records) {
  PayloadWriter w;
  w.put_u64(design_id);
  w.put_u64(sched_id);
  w.put_str(key);
  w.put_str(records);
  return Frame{MsgType::kDetect, std::move(w).take()};
}

Frame make_embed(std::uint64_t design_id, std::string_view key,
                 std::uint32_t marks, std::uint32_t tau, std::uint32_t k,
                 double epsilon) {
  PayloadWriter w;
  w.put_u64(design_id);
  w.put_str(key);
  w.put_u32(marks);
  w.put_u32(tau);
  w.put_u32(k);
  w.put_f64(epsilon);
  return Frame{MsgType::kEmbed, std::move(w).take()};
}

// --- Transport: in-process Service or a lwm-serve daemon ----------------

class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// nullopt on transport failure; protocol errors arrive as kError.
  [[nodiscard]] virtual std::optional<Frame> call(const Frame& request) = 0;
};

class InProcessEndpoint final : public Endpoint {
 public:
  explicit InProcessEndpoint(lwm::serve::Service& service)
      : service_(service) {}
  std::optional<Frame> call(const Frame& request) override {
    return service_.handle(request);
  }

 private:
  lwm::serve::Service& service_;
};

class SocketEndpoint final : public Endpoint {
 public:
  explicit SocketEndpoint(lwm::serve::Client client)
      : client_(std::move(client)) {}
  std::optional<Frame> call(const Frame& request) override {
    return client_.call(request);
  }

 private:
  lwm::serve::Client client_;
};

// --- Scan ---------------------------------------------------------------

struct ScanResult {
  std::string stem;
  bool ok = false;
  std::string error;
  std::uint32_t records = 0;
  std::uint32_t detected = 0;
  std::uint32_t roots_scanned = 0;
};

std::string describe_error(const Frame& f) {
  lwm::serve::ErrorInfo info;
  if (lwm::serve::parse_error_frame(f, info)) {
    return "error " + std::to_string(info.code) + ": " +
           info.diag.to_string();
  }
  return "unexpected response type";
}

ScanResult scan_one(Endpoint& ep, const fs::path& cdfg_path,
                    const std::string& key, const std::string& global_records) {
  ScanResult res;
  res.stem = cdfg_path.stem().string();
  const auto fail = [&](std::string why) {
    res.error = std::move(why);
    return res;
  };

  const auto design_text = lwm::io::read_file(cdfg_path.string());
  if (!design_text.ok()) return fail(design_text.diag().to_string());

  auto loaded = ep.call(make_load_design(design_text.value()));
  if (!loaded) return fail("transport failure on load-design");
  if (loaded->type != MsgType::kDesignLoaded) return fail(describe_error(*loaded));
  PayloadReader lr(loaded->payload);
  const std::uint64_t design_id = lr.get_u64();
  (void)lr.get_u32();  // nodes
  (void)lr.get_u32();  // ops
  (void)lr.get_u32();  // critical_path
  (void)lr.get_u32();  // critical_path_min
  (void)lr.get_u8();   // already_resident
  if (!lr.complete()) return fail("malformed load-design response");

  // Suspect schedule: the sibling .sched file, or an ASAP schedule of
  // the design itself when none was recovered.
  std::string sched_text;
  const fs::path sched_path = fs::path(cdfg_path).replace_extension(".sched");
  if (fs::exists(sched_path)) {
    const auto t = lwm::io::read_file(sched_path.string());
    if (!t.ok()) return fail(t.diag().to_string());
    sched_text = t.value();
  } else {
    auto parsed = lwm::cdfg::parse_cdfg(design_text.value(),
                                        cdfg_path.filename().string());
    if (!parsed.ok()) return fail(parsed.diag().to_string());
    const lwm::cdfg::Graph g = std::move(parsed).value();
    const lwm::cdfg::TimingInfo t =
        lwm::cdfg::compute_timing(g, -1, lwm::cdfg::EdgeFilter::all());
    lwm::sched::Schedule s(g);
    for (const lwm::cdfg::NodeId n : g.nodes()) s.set_start(n, t.asap[n.value]);
    sched_text = lwm::sched::schedule_to_text(g, s);
  }

  auto sched_loaded = ep.call(make_load_schedule(design_id, sched_text));
  if (!sched_loaded) return fail("transport failure on load-schedule");
  if (sched_loaded->type != MsgType::kScheduleLoaded) {
    return fail(describe_error(*sched_loaded));
  }
  PayloadReader sr(sched_loaded->payload);
  const std::uint64_t sched_id = sr.get_u64();
  (void)sr.get_u32();  // schedule length
  if (!sr.complete()) return fail("malformed load-schedule response");

  // Records: the sibling .lwm archive, or the shared --records file.
  std::string records_text = global_records;
  const fs::path records_path = fs::path(cdfg_path).replace_extension(".lwm");
  if (fs::exists(records_path)) {
    const auto t = lwm::io::read_file(records_path.string());
    if (!t.ok()) return fail(t.diag().to_string());
    records_text = t.value();
  }
  if (records_text.empty()) {
    return fail("no records: neither " + records_path.filename().string() +
                " nor --records given");
  }

  auto detected = ep.call(make_detect(design_id, sched_id, key, records_text));
  if (!detected) return fail("transport failure on detect");
  if (detected->type != MsgType::kDetected) return fail(describe_error(*detected));
  PayloadReader dr(detected->payload);
  res.records = dr.get_u32();
  for (std::uint32_t i = 0; i < res.records && dr.ok(); ++i) {
    res.detected += dr.get_u8();
    (void)dr.get_u32();  // hit count
    (void)dr.get_u32();  // best root
  }
  res.roots_scanned = dr.get_u32();
  if (!dr.complete()) return fail("malformed detect response");
  res.ok = true;
  return res;
}

// --- Corpus generation --------------------------------------------------

int make_corpus(const std::string& dir, int designs, const std::string& key,
                int ops, int marks, std::uint64_t seed,
                lwm::serve::Service& service) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  InProcessEndpoint ep(service);
  for (int i = 0; i < designs; ++i) {
    lwm::dfglib::MegaConfig cfg;
    char name[32];
    std::snprintf(name, sizeof name, "scan_%03d", i);
    cfg.name = name;
    cfg.shape = lwm::dfglib::MegaShape::kLayeredDeep;
    cfg.operations = ops;
    cfg.width = 16;
    cfg.seed = seed + static_cast<std::uint64_t>(i);
    const std::string text =
        lwm::cdfg::to_text(lwm::dfglib::make_mega_design(cfg));

    auto loaded = ep.call(make_load_design(text));
    if (!loaded || loaded->type != MsgType::kDesignLoaded) {
      std::fprintf(stderr, "lwm-scan: load failed for %s: %s\n", name,
                   loaded ? describe_error(*loaded).c_str() : "transport");
      return 1;
    }
    PayloadReader lr(loaded->payload);
    const std::uint64_t design_id = lr.get_u64();

    auto embedded = ep.call(make_embed(design_id, key,
                                       static_cast<std::uint32_t>(marks),
                                       /*tau=*/8, /*k=*/3, /*epsilon=*/0.25));
    if (!embedded || embedded->type != MsgType::kEmbedded) {
      std::fprintf(stderr, "lwm-scan: embed failed for %s: %s\n", name,
                   embedded ? describe_error(*embedded).c_str() : "transport");
      return 1;
    }
    PayloadReader er(embedded->payload);
    const std::uint32_t marks_embedded = er.get_u32();
    (void)er.get_u32();  // edges
    (void)er.get_f64();  // log10_pc
    const std::string records(er.get_str());
    const std::string sched(er.get_str());
    if (!er.complete() || marks_embedded == 0) {
      std::fprintf(stderr, "lwm-scan: no marks embedded for %s\n", name);
      return 1;
    }

    const fs::path base = fs::path(dir) / name;
    for (const auto& [ext, content] :
         {std::pair<const char*, const std::string*>{".cdfg", &text},
          {".sched", &sched},
          {".lwm", &records}}) {
      std::ofstream os(base.string() + ext, std::ios::binary);
      os << *content;
      if (!os) {
        std::fprintf(stderr, "lwm-scan: cannot write %s%s\n",
                     base.string().c_str(), ext);
        return 1;
      }
    }
    std::printf("%s: %u marks embedded\n", name, marks_embedded);
  }
  return 0;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <dir> --key KEY [--records FILE] [--threads N]\n"
      "          [--socket PATH] [--json PATH]\n"
      "       %s --make-corpus <dir> --designs N --key KEY\n"
      "          [--ops N] [--marks N] [--seed S]\n",
      argv0, argv0);
}

std::optional<int> parse_int(const char* s) {
  if (s == nullptr) return std::nullopt;
  const auto v = lwm::io::to_int(s);
  if (!v || *v < 0) return std::nullopt;
  return *v;
}

std::string json_escape_min(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string key;
  std::string records_file;
  std::string socket_path;
  std::string json_path;
  bool corpus_mode = false;
  int designs = 0;
  int ops = 400;
  int marks = 4;
  std::uint64_t seed = 1;
  int threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    const auto take_int = [&](const char* flag) -> std::optional<int> {
      const auto v = parse_int(value);
      if (!v) std::fprintf(stderr, "lwm-scan: %s needs a non-negative integer\n", flag);
      ++i;
      return v;
    };
    if (arg == "--key" && value != nullptr) {
      key = value;
      ++i;
    } else if (arg == "--records" && value != nullptr) {
      records_file = value;
      ++i;
    } else if (arg == "--socket" && value != nullptr) {
      socket_path = value;
      ++i;
    } else if (arg == "--json" && value != nullptr) {
      json_path = value;
      ++i;
    } else if (arg == "--make-corpus" && value != nullptr) {
      corpus_mode = true;
      dir = value;
      ++i;
    } else if (arg == "--designs") {
      const auto v = take_int("--designs");
      if (!v) return 2;
      designs = *v;
    } else if (arg == "--ops") {
      const auto v = take_int("--ops");
      if (!v) return 2;
      ops = *v;
    } else if (arg == "--marks") {
      const auto v = take_int("--marks");
      if (!v) return 2;
      marks = *v;
    } else if (arg == "--seed") {
      const auto v = take_int("--seed");
      if (!v) return 2;
      seed = static_cast<std::uint64_t>(*v);
    } else if (arg == "--threads") {
      const auto v = take_int("--threads");
      if (!v) return 2;
      threads = *v;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] != '-' && dir.empty()) {
      dir = arg;
    } else {
      std::fprintf(stderr, "lwm-scan: unknown or incomplete argument '%s'\n",
                   arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (dir.empty() || key.empty() || (corpus_mode && designs <= 0)) {
    usage(argv[0]);
    return 2;
  }

  const int concurrency =
      threads > 0 ? threads : lwm::exec::ThreadPool::hardware_concurrency();
  lwm::exec::ThreadPool pool(concurrency);
  lwm::serve::ServiceOptions sopts;
  sopts.pool = &pool;
  lwm::serve::Service service(sopts);

  if (corpus_mode) {
    return make_corpus(dir, designs, key, ops, marks, seed, service);
  }

  std::string global_records;
  if (!records_file.empty()) {
    const auto t = lwm::io::read_file(records_file);
    if (!t.ok()) {
      std::fprintf(stderr, "lwm-scan: %s\n", t.diag().to_string().c_str());
      return 1;
    }
    global_records = t.value();
  }

  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".cdfg") {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    std::fprintf(stderr, "lwm-scan: cannot read directory %s: %s\n",
                 dir.c_str(), ec.message().c_str());
    return 1;
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "lwm-scan: no .cdfg files under %s\n", dir.c_str());
    return 1;
  }

  // Shard files across the pool.  In-process, every worker drives the
  // shared Service (handle() is thread-safe); against a daemon, each
  // file opens its own client connection.  Results land in file-index
  // slots, so the merged report is identical at any thread count.
  std::vector<ScanResult> results(files.size());
  lwm::exec::parallel_for(&pool, files.size(), [&](std::size_t i) {
    if (socket_path.empty()) {
      InProcessEndpoint ep(service);
      results[i] = scan_one(ep, files[i], key, global_records);
    } else {
      std::string error;
      lwm::serve::Client client = lwm::serve::Client::connect(socket_path, &error);
      if (!client.connected()) {
        results[i].stem = files[i].stem().string();
        results[i].error = error;
        return;
      }
      SocketEndpoint ep(std::move(client));
      results[i] = scan_one(ep, files[i], key, global_records);
    }
  });

  std::uint64_t total_records = 0;
  std::uint64_t total_detected = 0;
  bool all_ok = true;
  for (const ScanResult& r : results) {
    if (!r.ok) {
      std::printf("%s: FAILED (%s)\n", r.stem.c_str(), r.error.c_str());
      all_ok = false;
      continue;
    }
    total_records += r.records;
    total_detected += r.detected;
    const bool hit = r.records > 0 && r.detected == r.records;
    if (!hit) all_ok = false;
    std::printf("%s: %u/%u records detected (%u roots scanned)%s\n",
                r.stem.c_str(), r.detected, r.records, r.roots_scanned,
                hit ? "" : "  <-- MISS");
  }

  // One stats request on the way out — the live metrics endpoint.
  std::string stats_json = "{}";
  {
    std::unique_ptr<Endpoint> ep;
    if (socket_path.empty()) {
      ep = std::make_unique<InProcessEndpoint>(service);
    } else {
      lwm::serve::Client client = lwm::serve::Client::connect(socket_path);
      if (client.connected()) {
        ep = std::make_unique<SocketEndpoint>(std::move(client));
      }
    }
    if (ep) {
      const auto stats = ep->call(Frame{MsgType::kStats, {}});
      if (stats && stats->type == MsgType::kStatsReport) {
        PayloadReader r(stats->payload);
        stats_json = std::string(r.get_str());
      }
    }
  }

  std::printf("scanned %zu designs: %llu/%llu records detected (%s)\n",
              files.size(), static_cast<unsigned long long>(total_detected),
              static_cast<unsigned long long>(total_records),
              all_ok ? "ok" : "FAILED");

  if (!json_path.empty()) {
    std::ofstream os(json_path, std::ios::binary);
    os << "{\"tool\":\"lwm-scan\",\"dir\":\"" << json_escape_min(dir)
       << "\",\"threads\":" << concurrency << ",\"files\":" << files.size()
       << ",\"records\":" << total_records
       << ",\"detected\":" << total_detected
       << ",\"ok\":" << (all_ok ? "true" : "false")
       << ",\"stats\":" << stats_json << "}\n";
  }
  return all_ok ? 0 : 1;
}
