// Socket-server integration: real AF_UNIX round-trips through Client,
// concurrent-client invariance at {1, 2, 8} clients (byte-identical
// responses), strict framing over the wire, and deterministic shedding.
// Carries the `tsan` label with the rest of the concurrency suite.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cdfg/serialize.h"
#include "dfglib/synth.h"
#include "exec/thread_pool.h"
#include "serve/server.h"

namespace lwm::serve {
namespace {

std::string unique_socket_path(const char* tag) {
  static std::atomic<int> counter{0};
  return testing::TempDir() + "lwm_" + tag + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

std::string fixture_text() {
  dfglib::MegaConfig cfg;
  cfg.name = "srv";
  cfg.operations = 250;
  cfg.width = 10;
  cfg.seed = 11;
  return cdfg::to_text(dfglib::make_mega_design(cfg));
}

Frame call_or_die(Client& client, const Frame& request) {
  auto r = client.call(request);
  EXPECT_TRUE(r.has_value()) << "transport failure";
  return r.value_or(Frame{});
}

struct RunningServer {
  explicit RunningServer(ServerOptions opts) : server(std::move(opts)) {
    std::string error;
    started = server.start(&error);
    EXPECT_TRUE(started) << error;
  }
  Server server;
  bool started = false;
};

TEST(ServerTest, PingOverTheSocket) {
  ServerOptions opts;
  opts.socket_path = unique_socket_path("ping");
  RunningServer rs(opts);
  ASSERT_TRUE(rs.started);
  Client c = Client::connect(opts.socket_path);
  ASSERT_TRUE(c.connected());
  EXPECT_EQ(call_or_die(c, Frame{MsgType::kPing, {}}).type, MsgType::kPong);
  // The connection supports many sequential requests.
  EXPECT_EQ(call_or_die(c, Frame{MsgType::kStats, {}}).type,
            MsgType::kStatsReport);
}

TEST(ServerTest, StartRejectsOverlongPath) {
  ServerOptions opts;
  opts.socket_path = testing::TempDir() + std::string(200, 'x') + ".sock";
  Server server(opts);
  std::string error;
  EXPECT_FALSE(server.start(&error));
  EXPECT_NE(error.find("too long"), std::string::npos);
}

TEST(ServerTest, ConcurrentClientInvariance) {
  exec::ThreadPool pool(4);
  ServerOptions opts;
  opts.socket_path = unique_socket_path("invariance");
  opts.service.pool = &pool;
  RunningServer rs(opts);
  ASSERT_TRUE(rs.started);

  // One client sets up the resident state and captures the baseline
  // detect response; N concurrent clients must all get those bytes.
  Client setup = Client::connect(opts.socket_path);
  ASSERT_TRUE(setup.connected());
  PayloadWriter lw;
  lw.put_str(fixture_text());
  const Frame loaded =
      call_or_die(setup, Frame{MsgType::kLoadDesign, std::move(lw).take()});
  ASSERT_EQ(loaded.type, MsgType::kDesignLoaded);
  PayloadReader lr(loaded.payload);
  const std::uint64_t design_id = lr.get_u64();

  PayloadWriter ew;
  ew.put_u64(design_id);
  ew.put_str("invariance-key");
  ew.put_u32(3);
  ew.put_u32(8);
  ew.put_u32(3);
  ew.put_f64(0.25);
  const Frame embedded =
      call_or_die(setup, Frame{MsgType::kEmbed, std::move(ew).take()});
  ASSERT_EQ(embedded.type, MsgType::kEmbedded);
  PayloadReader er(embedded.payload);
  ASSERT_GT(er.get_u32(), 0u);  // marks
  (void)er.get_u32();
  (void)er.get_f64();
  const std::string records(er.get_str());
  const std::string sched_text(er.get_str());

  PayloadWriter sw;
  sw.put_u64(design_id);
  sw.put_str(sched_text);
  const Frame sched =
      call_or_die(setup, Frame{MsgType::kLoadSchedule, std::move(sw).take()});
  ASSERT_EQ(sched.type, MsgType::kScheduleLoaded);
  PayloadReader sr(sched.payload);
  const std::uint64_t sched_id = sr.get_u64();

  PayloadWriter dw;
  dw.put_u64(design_id);
  dw.put_u64(sched_id);
  dw.put_str("invariance-key");
  dw.put_str(records);
  const Frame detect_req{MsgType::kDetect, std::move(dw).take()};
  const Frame baseline = call_or_die(setup, detect_req);
  ASSERT_EQ(baseline.type, MsgType::kDetected);

  for (const int clients : {1, 2, 8}) {
    std::vector<Frame> responses(clients);
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (int i = 0; i < clients; ++i) {
      workers.emplace_back([&, i] {
        Client c = Client::connect(opts.socket_path);
        ASSERT_TRUE(c.connected());
        auto r = c.call(detect_req);
        ASSERT_TRUE(r.has_value());
        responses[i] = std::move(*r);
      });
    }
    for (auto& w : workers) w.join();
    for (int i = 0; i < clients; ++i) {
      EXPECT_EQ(responses[i].type, baseline.type) << clients << " clients";
      EXPECT_EQ(responses[i].payload, baseline.payload)
          << clients << " clients, client " << i;
    }
  }
}

/// Raw-byte socket for the framing tests Client cannot express (it
/// only ever sends well-formed frames).  Sends arbitrary bytes and
/// reads whatever comes back until the peer closes or one frame
/// decodes.
class RawConn {
 public:
  explicit RawConn(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size());
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void send_bytes(std::string_view bytes) const {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }
  /// Reads until one frame decodes or the peer closes.  Also reports
  /// whether the peer closed the connection after that frame.
  [[nodiscard]] std::optional<Frame> read_frame(bool* peer_closed = nullptr) {
    std::string buffer;
    char chunk[4096];
    std::optional<Frame> got;
    while (true) {
      if (!got) {
        const DecodeResult d = decode_frame(buffer);
        if (d.status == DecodeResult::Status::kOk) {
          got = d.frame;
          buffer.erase(0, d.consumed);
          if (peer_closed == nullptr) return got;
        } else if (d.status == DecodeResult::Status::kError) {
          return std::nullopt;
        }
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) {
        if (peer_closed != nullptr) *peer_closed = true;
        return got;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
};

TEST(ServerRawStreamTest, BadMagicGetsErrorFrameThenClose) {
  ServerOptions opts;
  opts.socket_path = unique_socket_path("badmagic");
  RunningServer rs(opts);
  ASSERT_TRUE(rs.started);

  std::string wire = encode_frame(Frame{MsgType::kPing, {}});
  wire[0] = 'X';
  RawConn conn(opts.socket_path);
  ASSERT_TRUE(conn.connected());
  conn.send_bytes(wire);
  bool closed = false;
  const auto reply = conn.read_frame(&closed);
  ASSERT_TRUE(reply.has_value());
  ErrorInfo info;
  ASSERT_TRUE(parse_error_frame(*reply, info));
  EXPECT_EQ(info.code, kErrBadFrame);
  EXPECT_TRUE(closed) << "a framing error is unrecoverable; close";
}

TEST(ServerRawStreamTest, OversizeHeaderAnsweredWithBadFrame) {
  ServerOptions opts;
  opts.socket_path = unique_socket_path("oversize");
  RunningServer rs(opts);
  ASSERT_TRUE(rs.started);

  std::string wire = encode_frame(Frame{MsgType::kPing, {}});
  const std::uint32_t big = kMaxPayload + 1;
  for (int i = 0; i < 4; ++i) {
    wire[8 + i] = static_cast<char>((big >> (8 * i)) & 0xFF);
  }
  RawConn conn(opts.socket_path);
  ASSERT_TRUE(conn.connected());
  conn.send_bytes(wire);
  const auto reply = conn.read_frame();
  ASSERT_TRUE(reply.has_value());
  ErrorInfo info;
  ASSERT_TRUE(parse_error_frame(*reply, info));
  EXPECT_EQ(info.code, kErrBadFrame);
}

TEST(ServerRawStreamTest, MidFrameStallTimesOut) {
  ServerOptions opts;
  opts.socket_path = unique_socket_path("stall");
  opts.io_timeout_ms = 600;  // short deadline so the test stays fast
  RunningServer rs(opts);
  ASSERT_TRUE(rs.started);

  const std::string wire = encode_frame(Frame{MsgType::kPing, {}});
  RawConn conn(opts.socket_path);
  ASSERT_TRUE(conn.connected());
  conn.send_bytes(std::string_view(wire).substr(0, 6));  // half a header
  const auto reply = conn.read_frame();  // blocks until server times out
  ASSERT_TRUE(reply.has_value());
  ErrorInfo info;
  ASSERT_TRUE(parse_error_frame(*reply, info));
  EXPECT_EQ(info.code, kErrTimeout);
}

TEST(ServerTest, SheddingKeepsTheConnectionAlive) {
  ServerOptions opts;
  opts.socket_path = unique_socket_path("shed");
  opts.max_in_flight = 0;  // every request sheds, deterministically
  RunningServer rs(opts);
  ASSERT_TRUE(rs.started);
  Client c = Client::connect(opts.socket_path);
  ASSERT_TRUE(c.connected());
  for (int i = 0; i < 3; ++i) {
    const Frame r = call_or_die(c, Frame{MsgType::kPing, {}});
    ErrorInfo info;
    ASSERT_TRUE(parse_error_frame(r, info)) << "request " << i;
    EXPECT_EQ(info.code, kErrShed);
  }
}

TEST(ServerTest, ConnectionCapShedsAtAccept) {
  ServerOptions opts;
  opts.socket_path = unique_socket_path("conncap");
  opts.max_connections = 1;
  RunningServer rs(opts);
  ASSERT_TRUE(rs.started);
  Client first = Client::connect(opts.socket_path);
  ASSERT_TRUE(first.connected());
  EXPECT_EQ(call_or_die(first, Frame{MsgType::kPing, {}}).type, MsgType::kPong);

  Client second = Client::connect(opts.socket_path);
  ASSERT_TRUE(second.connected());  // connect() succeeds; accept sheds
  auto r = second.call(Frame{MsgType::kPing, {}});
  ASSERT_TRUE(r.has_value());
  ErrorInfo info;
  ASSERT_TRUE(parse_error_frame(*r, info));
  EXPECT_EQ(info.code, kErrShed);
}

TEST(ServerTest, StopIsIdempotentAndJoinsClients) {
  ServerOptions opts;
  opts.socket_path = unique_socket_path("stop");
  auto rs = std::make_unique<RunningServer>(opts);
  ASSERT_TRUE(rs->started);
  Client c = Client::connect(opts.socket_path);
  ASSERT_TRUE(c.connected());
  EXPECT_EQ(call_or_die(c, Frame{MsgType::kPing, {}}).type, MsgType::kPong);
  rs->server.stop();
  rs->server.stop();  // idempotent
  EXPECT_FALSE(rs->server.running());
  rs.reset();  // destructor after stop is clean
  // The socket file is unlinked on stop.
  EXPECT_NE(Client::connect(opts.socket_path).connected(), true);
}

}  // namespace
}  // namespace lwm::serve
