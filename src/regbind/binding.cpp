#include "regbind/binding.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace lwm::regbind {

using cdfg::NodeId;

namespace {

/// Union-find over lifetime indices for the share groups.
struct UnionFind {
  std::vector<std::size_t> parent;

  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

}  // namespace

std::optional<Binding> left_edge_binding(const std::vector<Lifetime>& lifetimes,
                                         const BindingConstraints& constraints) {
  const std::size_t n = lifetimes.size();
  std::unordered_map<NodeId, std::size_t> index;
  for (std::size_t i = 0; i < n; ++i) index[lifetimes[i].producer] = i;

  auto lookup = [&](NodeId producer) -> std::optional<std::size_t> {
    const auto it = index.find(producer);
    if (it == index.end()) return std::nullopt;
    return it->second;
  };

  // Merge share pairs into groups.
  UnionFind uf(n);
  for (const auto& [a, b] : constraints.share) {
    const auto ia = lookup(a);
    const auto ib = lookup(b);
    if (!ia || !ib) return std::nullopt;  // unknown variable
    uf.unite(*ia, *ib);
  }
  // Validate groups: members must be pairwise non-overlapping.
  std::unordered_map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < n; ++i) groups[uf.find(i)].push_back(i);
  for (const auto& [root, members] : groups) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (lifetimes[members[i]].overlaps(lifetimes[members[j]])) {
          return std::nullopt;  // shared register with overlapping lives
        }
      }
    }
  }
  // Separate pairs must not end up in the same group.
  for (const auto& [a, b] : constraints.separate) {
    const auto ia = lookup(a);
    const auto ib = lookup(b);
    if (!ia || !ib) return std::nullopt;
    if (uf.find(*ia) == uf.find(*ib)) return std::nullopt;
  }

  // Group-level left edge: treat each group as the set of its member
  // intervals; a register is feasible for a group if none of the group's
  // intervals overlaps any interval already placed in it, and placing the
  // group there violates no separate pair.
  struct Reg {
    std::vector<std::size_t> members;  // lifetime indices in this register
  };
  std::vector<Reg> regs;

  // Deterministic order: groups by earliest birth, then producer id.
  std::vector<std::size_t> group_roots;
  for (const auto& [root, members] : groups) group_roots.push_back(root);
  auto group_key = [&](std::size_t root) {
    int birth = 1 << 30;
    std::uint32_t id = 0xffffffffu;
    for (const std::size_t m : groups[root]) {
      if (lifetimes[m].birth < birth) {
        birth = lifetimes[m].birth;
        id = lifetimes[m].producer.value;
      } else if (lifetimes[m].birth == birth) {
        id = std::min(id, lifetimes[m].producer.value);
      }
    }
    return std::make_pair(birth, id);
  };
  std::sort(group_roots.begin(), group_roots.end(),
            [&](std::size_t a, std::size_t b) { return group_key(a) < group_key(b); });

  // Separate lookup per lifetime index.
  std::vector<std::vector<std::size_t>> separated(n);
  for (const auto& [a, b] : constraints.separate) {
    const std::size_t ia = *lookup(a);
    const std::size_t ib = *lookup(b);
    separated[ia].push_back(ib);
    separated[ib].push_back(ia);
  }

  std::vector<int> reg_of_lifetime(n, -1);
  for (const std::size_t root : group_roots) {
    const std::vector<std::size_t>& members = groups[root];
    int chosen = -1;
    for (std::size_t r = 0; r < regs.size(); ++r) {
      bool ok = true;
      for (const std::size_t m : members) {
        for (const std::size_t placed : regs[r].members) {
          if (lifetimes[m].overlaps(lifetimes[placed])) {
            ok = false;
            break;
          }
        }
        if (ok) {
          for (const std::size_t sep : separated[m]) {
            if (reg_of_lifetime[sep] == static_cast<int>(r)) {
              ok = false;
              break;
            }
          }
        }
        if (!ok) break;
      }
      if (ok) {
        chosen = static_cast<int>(r);
        break;
      }
    }
    if (chosen < 0) {
      regs.emplace_back();
      chosen = static_cast<int>(regs.size()) - 1;
    }
    for (const std::size_t m : members) {
      regs[static_cast<std::size_t>(chosen)].members.push_back(m);
      reg_of_lifetime[m] = chosen;
    }
  }

  Binding b;
  b.register_count = static_cast<int>(regs.size());
  for (std::size_t i = 0; i < n; ++i) {
    b.reg_of[lifetimes[i].producer] = reg_of_lifetime[i];
  }
  return b;
}

BindingCheck verify_binding(const std::vector<Lifetime>& lifetimes,
                            const Binding& b,
                            const BindingConstraints& constraints) {
  BindingCheck check;
  auto fail = [&check](std::string msg) {
    check.ok = false;
    check.errors.push_back(std::move(msg));
  };

  for (const Lifetime& lt : lifetimes) {
    const int r = b.reg(lt.producer);
    if (r < 0 || r >= b.register_count) {
      fail("variable of node " + std::to_string(lt.producer.value) +
           " unbound or out of range");
    }
  }
  for (std::size_t i = 0; i < lifetimes.size(); ++i) {
    for (std::size_t j = i + 1; j < lifetimes.size(); ++j) {
      if (lifetimes[i].overlaps(lifetimes[j]) &&
          b.reg(lifetimes[i].producer) == b.reg(lifetimes[j].producer)) {
        fail("overlapping lifetimes share register " +
             std::to_string(b.reg(lifetimes[i].producer)));
      }
    }
  }
  for (const auto& [x, y] : constraints.share) {
    if (b.reg(x) < 0 || b.reg(x) != b.reg(y)) {
      fail("share constraint violated");
    }
  }
  for (const auto& [x, y] : constraints.separate) {
    if (b.reg(x) < 0 || b.reg(y) < 0 || b.reg(x) == b.reg(y)) {
      fail("separate constraint violated");
    }
  }
  return check;
}

}  // namespace lwm::regbind
