// replay_main — corpus replay driver for plain (non-libFuzzer) builds.
//
// Each fuzz target links this main() into a `fuzz_<target>_replay`
// binary; the `fuzz-regress` ctest label runs it over the checked-in
// corpus in every configuration (default, asan, ubsan, tsan), so the
// crash fixes the corpus encodes cannot regress without a fuzzing
// toolchain in CI.  `--mutate N` additionally replays N deterministic
// random mutations (byte flips, truncations, splices) of every corpus
// entry — a smoke-budget stand-in for real fuzzing when libFuzzer
// (clang) is unavailable.
//
// usage: fuzz_<target>_replay [--mutate N] [--seed S] <file-or-dir>...
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "io/source.h"
#include "io/text.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

bool run_one(const std::string& label, const std::string& bytes) {
  try {
    (void)LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL %s: escaped exception: %s\n", label.c_str(),
                 e.what());
  } catch (...) {
    std::fprintf(stderr, "FAIL %s: escaped non-std exception\n", label.c_str());
  }
  return false;
}

std::string mutate(const std::string& base, std::mt19937_64& rng) {
  std::string m = base;
  switch (rng() % 4) {
    case 0:  // flip a byte
      if (!m.empty()) m[rng() % m.size()] = static_cast<char>(rng() & 0xff);
      break;
    case 1:  // truncate
      m.resize(m.empty() ? 0 : rng() % m.size());
      break;
    case 2:  // insert a byte
      m.insert(m.begin() + static_cast<long>(m.empty() ? 0 : rng() % m.size()),
               static_cast<char>(rng() & 0xff));
      break;
    default:  // splice: duplicate a random chunk somewhere else
      if (m.size() > 1) {
        const std::size_t from = rng() % m.size();
        const std::size_t len = 1 + rng() % (m.size() - from);
        m.insert(rng() % m.size(), m.substr(from, len));
      }
      break;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  int mutations = 0;
  std::uint64_t seed = 1;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const auto int_value = [&](const char* flag) -> long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      const auto v = lwm::io::to_int(argv[++i]);
      if (!v || *v < 0) {
        std::fprintf(stderr, "error: %s needs a non-negative integer\n", flag);
        std::exit(2);
      }
      return *v;
    };
    if (std::strcmp(argv[i], "--mutate") == 0) {
      mutations = static_cast<int>(int_value("--mutate"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<std::uint64_t>(int_value("--seed"));
    } else {
      roots.emplace_back(argv[i]);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: %s [--mutate N] [--seed S] <file-or-dir>...\n",
                 argv[0]);
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(root)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "error: no such corpus input: %s\n",
                   root.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::mt19937_64 rng(seed);
  int failures = 0;
  long executed = 0;
  for (const fs::path& file : files) {
    auto bytes = lwm::io::read_file(file.string());
    if (!bytes) {
      std::fprintf(stderr, "error: %s\n", bytes.diag().to_string().c_str());
      return 2;
    }
    failures += !run_one(file.string(), bytes.value());
    ++executed;
    for (int m = 0; m < mutations; ++m) {
      failures += !run_one(file.string() + " (mutation " + std::to_string(m) + ")",
                           mutate(bytes.value(), rng));
      ++executed;
    }
  }
  std::printf("%s: %ld inputs (%zu corpus files, %d mutations each), "
              "%d failure(s)\n",
              argv[0], executed, files.size(), mutations, failures);
  return failures == 0 ? 0 : 1;
}
