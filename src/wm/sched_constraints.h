// sched_constraints.h — constraint encoding for operation scheduling
// (paper Fig. 2).
//
// Given the carved subtree T, the encoder
//   1. filters T to T': executable nodes with enough scheduling slack
//      (laxity at most C·(1-epsilon)) and an overlapping ASAP–ALAP window
//      with some other candidate;
//   2. draws an ordered selection T'' of K nodes from T' using the
//      author's bitstream;
//   3. for each n_i in T'', picks an overlap partner n_k among later
//      T'' members and adds the temporal edge n_i -> n_k.
//
// Reproduction note on the laxity test: Fig. 2 literally reads
// "If laxity(n_i) > |C|(1-eps)", but the surrounding text says the
// restriction exists "to avoid significant timing overhead and to
// increase the scheduling freedom", and the twin protocol (Fig. 5)
// *excludes* nodes with laxity greater than C·(1-eps).  Constraining
// near-critical nodes would do the opposite of the stated goal, so we
// take the Fig. 2 comparison as a typo and admit nodes with
// laxity <= C·(1-eps).  Set SchedWmOptions::paper_literal_laxity to
// reproduce the literal text instead.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cdfg/analysis.h"
#include "cdfg/graph.h"
#include "crypto/signature.h"
#include "wm/domain.h"

namespace lwm::exec {
class ThreadPool;
}

namespace lwm::wm {

/// One embedded temporal constraint ("src must finish before dst starts").
struct TemporalConstraint {
  cdfg::NodeId src;
  cdfg::NodeId dst;
  /// Positions of src/dst in the *ordered carved subtree* — the
  /// graph-independent coordinates the detector uses.
  int src_pos = -1;
  int dst_pos = -1;
};

struct SchedWmOptions {
  DomainKey domain;
  int k = 5;              ///< temporal edges per local watermark (K)
  double epsilon = 0.25;  ///< laxity margin (epsilon > 0)
  int tau_prime_min = 0;  ///< minimum |T'|; 0 = max(k, 2).  If |T'| falls
                          ///< short the subtree is rejected ("the entire
                          ///< process of subtree selection is repeated").
  /// Minimum temporal edges a locality must yield to count as a
  /// watermark.  One-edge marks carry ~1 bit and false-positive readily
  /// on regular designs whose localities are isomorphic; raising this
  /// floor shrinks the per-root coincidence probability exponentially.
  int min_edges = 1;
  bool paper_literal_laxity = false;
  /// When > 0, nodes lying on any of the `avoid_k_worst` worst critical
  /// paths of the specification (max-delay lengths, sched::k_worst_paths)
  /// are excluded from T'.  Under the bounded delay model the laxity
  /// filter alone can admit a node that is near-critical on a worst-case
  /// realization; this keeps temporal constraints off the k most timing-
  /// critical spines entirely.  0 (default) preserves the paper's
  /// laxity-only filter bit for bit.
  int avoid_k_worst = 0;
  /// Purpose tag for the selection bitstream.
  static constexpr const char* kSelectTag = "lwm/sched-edges";
};

/// The designer's record of one embedded scheduling watermark.
struct SchedWatermark {
  cdfg::NodeId root;
  SchedWmOptions options;
  std::vector<TemporalConstraint> constraints;
  /// The ordered carved subtree at embed time (diagnostics; detection
  /// re-derives it from the suspect graph).
  std::vector<cdfg::NodeId> subtree;
};

/// Whole-graph state precomputed once and shared across many
/// plan_sched_watermark calls against the same (unmutated) graph.  Two
/// things make per-root planning O(cone) instead of O(V):
///
///   * `timing` — the specification TimingInfo the Fig. 2 filters read,
///     computed once instead of per root;
///   * `topo_rank` — one fixed topological order of the full graph
///     (EdgeFilter::all()).  With a context, the cycle check for a
///     temporal edge n_i -> n_k becomes rank(n_i) < rank(n_k): every
///     accepted edge is consistent with the *same* topological order, so
///     any set of edges planned by any number of concurrent planners is
///     jointly acyclic by construction — no transitive-closure bitset
///     (V^2/64 bytes is ~125 GB at 1M nodes) and no cross-locality
///     coordination.  The guard is more conservative than a reachability
///     probe (it refuses order-opposing edges a closure would admit), so
///     context-planned marks can differ from closure-planned marks; what
///     it preserves is determinism and acyclicity at any thread count.
struct PlanContext {
  cdfg::TimingInfo timing;
  std::vector<std::uint32_t> topo_rank;  ///< indexed by NodeId::value
  std::vector<char> on_worst_path;       ///< nonempty iff avoid_k_worst > 0
  std::vector<cdfg::NodeId> ops;         ///< executable nodes, id order

  [[nodiscard]] static PlanContext build(const cdfg::Graph& g,
                                         const SchedWmOptions& opts);
};

/// Plans a watermark rooted at `root` without mutating `g`.  Returns
/// nullopt if the locality is unusable (|T'| < tau_prime_min, or no
/// overlap partners remain) — the caller then retries another root.
[[nodiscard]] std::optional<SchedWatermark> plan_sched_watermark(
    const cdfg::Graph& g, cdfg::NodeId root, const crypto::Signature& sig,
    const SchedWmOptions& opts);

/// Context-backed planning: identical filters and bitstream draws, but
/// all whole-graph work comes from `ctx` and the cycle check is the
/// topo-rank guard.  Pure with respect to `g` and `ctx` — safe to call
/// from many threads at once.
[[nodiscard]] std::optional<SchedWatermark> plan_sched_watermark(
    const cdfg::Graph& g, cdfg::NodeId root, const crypto::Signature& sig,
    const SchedWmOptions& opts, const PlanContext& ctx);

/// Plans and embeds: adds the K temporal edges to `g`.
[[nodiscard]] std::optional<SchedWatermark> embed_sched_watermark(
    cdfg::Graph& g, cdfg::NodeId root, const crypto::Signature& sig,
    const SchedWmOptions& opts);

/// Embeds `count` local watermarks at pseudo-randomly chosen roots,
/// skipping unusable localities (up to `max_attempts` root draws).
[[nodiscard]] std::vector<SchedWatermark> embed_local_watermarks(
    cdfg::Graph& g, const crypto::Signature& sig, int count,
    const SchedWmOptions& opts, int max_attempts = 1000);

/// Locality-parallel embedding for mega-designs: draws the candidate
/// root sequence serially (same "lwm/roots" stream and dedupe rule as
/// embed_local_watermarks), plans localities concurrently over `pool`
/// against the pristine graph using a shared PlanContext, then merges
/// serially in candidate order, accepting planned marks until `count`.
/// Candidates are planned in fixed-size waves so a satisfied count stops
/// the scan early; wave boundaries are a pure function of the candidate
/// sequence, so the result — every accepted record and every temporal
/// edge — is bit-identical at any thread count (pool == nullptr
/// included).  Acyclicity across concurrently planned marks is
/// guaranteed by the context's topo-rank guard.
[[nodiscard]] std::vector<SchedWatermark> embed_local_watermarks_parallel(
    cdfg::Graph& g, const crypto::Signature& sig, int count,
    const SchedWmOptions& opts, exec::ThreadPool* pool,
    int max_attempts = 1000);

/// Same embedding against a caller-provided context — the resident-state
/// entry point (serve::DesignStore keeps one PlanContext per design and
/// amortizes it across requests).  `ctx` must have been built for a
/// graph with the same live nodes and NodeIds as `g` (a copy of the
/// context's graph qualifies) and with options whose `avoid_k_worst`
/// matches `opts` — everything else in `opts` may vary per call.
/// Bit-identical to the context-building overload at any thread count.
[[nodiscard]] std::vector<SchedWatermark> embed_local_watermarks_parallel(
    cdfg::Graph& g, const crypto::Signature& sig, int count,
    const SchedWmOptions& opts, exec::ThreadPool* pool,
    const PlanContext& ctx, int max_attempts = 1000);

/// Embeds local watermarks until at least `target_edges` temporal
/// constraints are in place (the Table I parameterization: constrain a
/// fixed fraction of the design's operations).  Stops early when the
/// root attempts are exhausted.
[[nodiscard]] std::vector<SchedWatermark> embed_watermarks_until_edges(
    cdfg::Graph& g, const crypto::Signature& sig, int target_edges,
    const SchedWmOptions& opts, int max_attempts = 5000);

/// Materializes temporal constraints as *unit operations* (paper §V:
/// "temporal edges were induced using additional operations with unit
/// operators, e.g. additions with variables assigned to zero at
/// runtime"): every temporal edge src->dst is replaced by data edges
/// src -> unit -> dst through a fresh kUnit node.  This is how the
/// watermark enters a compiled instruction stream; the unit ops are what
/// cost the Table I performance overhead.  Returns the inserted nodes.
std::vector<cdfg::NodeId> materialize_with_unit_ops(
    cdfg::Graph& g, const std::vector<SchedWatermark>& marks);

}  // namespace lwm::wm
