#include "cdfg/subgraph.h"

#include <stdexcept>
#include <unordered_set>

namespace lwm::cdfg {

Partition extract_partition(const Graph& g, std::span<const NodeId> keep,
                            bool keep_temporal) {
  Partition part;
  part.graph.set_name(g.name() + "_part");
  std::unordered_set<NodeId> keep_set(keep.begin(), keep.end());

  for (NodeId n : keep) {
    if (!g.is_live(n)) {
      throw std::out_of_range("extract_partition: dead node in keep set");
    }
    const Node& node = g.node(n);
    const NodeId copy =
        part.graph.add_node(node.kind, node.name, node.delay);
    part.graph.set_delay_bounds(copy, node.delay_min, node.delay);
    part.map.forward[n] = copy;
  }

  int fresh_in = 0;
  int fresh_out = 0;
  for (EdgeId e : g.edges()) {
    const Edge& ed = g.edge(e);
    const bool src_in = keep_set.count(ed.src) != 0;
    const bool dst_in = keep_set.count(ed.dst) != 0;
    if (ed.kind == EdgeKind::kTemporal && !keep_temporal) continue;
    if (src_in && dst_in) {
      part.graph.add_edge(part.map.at(ed.src), part.map.at(ed.dst), ed.kind,
                          ed.tokens);
    } else if (dst_in && ed.kind == EdgeKind::kData) {
      // Severed fan-in: the value now arrives from outside the core.
      const NodeId in = part.graph.add_node(
          OpKind::kInput, "cut_in" + std::to_string(fresh_in++));
      part.graph.add_edge(in, part.map.at(ed.dst), EdgeKind::kData);
    } else if (src_in && ed.kind == EdgeKind::kData) {
      // Severed fan-out: the value leaves the core.
      const NodeId out = part.graph.add_node(
          OpKind::kOutput, "cut_out" + std::to_string(fresh_out++));
      part.graph.add_edge(part.map.at(ed.src), out, EdgeKind::kData);
    }
    // Severed control/temporal edges simply disappear with the context.
  }
  return part;
}

NodeMap embed_graph(Graph& host, const Graph& core, const std::string& prefix) {
  NodeMap map;
  for (NodeId n : core.nodes()) {
    const Node& node = core.node(n);
    const NodeId copy = host.add_node(node.kind, prefix + node.name, node.delay);
    host.set_delay_bounds(copy, node.delay_min, node.delay);
    map.forward[n] = copy;
  }
  for (EdgeId e : core.edges()) {
    const Edge& ed = core.edge(e);
    host.add_edge(map.at(ed.src), map.at(ed.dst), ed.kind, ed.tokens);
  }
  return map;
}

void rewire_input(Graph& g, NodeId input, NodeId src) {
  if (g.node(input).kind != OpKind::kInput) {
    throw std::invalid_argument("rewire_input: node is not a primary input");
  }
  // Collect consumers first: removing the node mutates adjacency.
  std::vector<std::pair<NodeId, EdgeKind>> consumers;
  for (EdgeId e : g.fanout(input)) {
    const Edge& ed = g.edge(e);
    consumers.emplace_back(ed.dst, ed.kind);
  }
  g.remove_node(input);
  for (const auto& [dst, kind] : consumers) {
    g.add_edge(src, dst, kind);
  }
}

void rewire_output(Graph& g, NodeId output, NodeId dst) {
  if (g.node(output).kind != OpKind::kOutput) {
    throw std::invalid_argument("rewire_output: node is not a primary output");
  }
  const std::span<const EdgeId> in = g.fanin(output);
  if (in.size() != 1) {
    throw std::invalid_argument("rewire_output: output must have one producer");
  }
  const NodeId producer = g.edge(in.front()).src;
  g.remove_node(output);
  g.add_edge(producer, dst, EdgeKind::kData);
}

}  // namespace lwm::cdfg
