// occupancy_crosscheck_test — the multi-cycle occupancy audit pinned as
// tests: under the dyno(bits) bounded delay model (multi-cycle adds and
// multiplies), the list scheduler's unit occupancy must agree with
// verify_schedule's model in both unit modes, and its results must
// cross-check against FDS and B&B on the dfglib kernels and the
// MediaBench table.  A list schedule that over- or under-charges a
// non-pipelined multi-cycle op fails here, not in production.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cdfg/analysis.h"
#include "cdfg/delay_model.h"
#include "cdfg/graph.h"
#include "dfglib/iir4.h"
#include "dfglib/kernels.h"
#include "dfglib/mediabench.h"
#include "sched/bnb.h"
#include "sched/force_directed.h"
#include "sched/list_sched.h"

namespace lwm::sched {
namespace {

using cdfg::Graph;

std::vector<Graph> kernel_suite() {
  std::vector<Graph> suite;
  suite.push_back(dfglib::make_fir(16));
  suite.push_back(dfglib::make_fft(8));
  suite.push_back(dfglib::make_biquad_cascade(4));
  suite.push_back(dfglib::iir4_parallel());
  const cdfg::DelayModel model = cdfg::DelayModel::dyno(16);
  for (Graph& g : suite) (void)model.annotate(g);
  return suite;
}

ResourceSet tight_units() {
  ResourceSet rs = ResourceSet::unlimited();
  rs.set_count(cdfg::UnitClass::kMul, 2);
  rs.set_count(cdfg::UnitClass::kAlu, 2);
  return rs;
}

TEST(OccupancyCrosscheckTest, ListLegalInBothUnitModesOnKernels) {
  for (const Graph& g : kernel_suite()) {
    SCOPED_TRACE(g.name());
    for (const bool pipelined : {false, true}) {
      ListScheduleOptions opts;
      opts.resources = tight_units();
      opts.pipelined_units = pipelined;
      const Schedule s = list_schedule(g, opts);
      const ScheduleCheck chk =
          verify_schedule(g, s, cdfg::EdgeFilter::all(), opts.resources, -1,
                          pipelined);
      EXPECT_TRUE(chk.ok) << "pipelined=" << pipelined << ": "
                          << (chk.errors.empty() ? "" : chk.errors.front());
    }
  }
}

TEST(OccupancyCrosscheckTest, PipeliningNeverLengthensTheSchedule) {
  // Pipelined units strictly relax occupancy (issue slot vs full d_max),
  // so the same priority order can only finish sooner or at par.
  for (const Graph& g : kernel_suite()) {
    SCOPED_TRACE(g.name());
    ListScheduleOptions pipe;
    pipe.resources = tight_units();
    pipe.pipelined_units = true;
    ListScheduleOptions nopipe = pipe;
    nopipe.pipelined_units = false;
    EXPECT_LE(list_schedule(g, pipe).length(g),
              list_schedule(g, nopipe).length(g));
  }
}

TEST(OccupancyCrosscheckTest, BnbNeverLosesToListOnKernels) {
  // The exact scheduler is the oracle: its optimum bounds the list
  // heuristic from below, and both must verify against the same
  // occupancy model.
  for (const Graph& g : kernel_suite()) {
    SCOPED_TRACE(g.name());
    BnbOptions bopts;
    bopts.resources = tight_units();
    bopts.node_limit = 2'000'000;
    const BnbResult exact = bnb_min_latency(g, bopts);
    EXPECT_TRUE(verify_schedule(g, exact.schedule, cdfg::EdgeFilter::all(),
                                bopts.resources)
                    .ok);

    ListScheduleOptions lopts;
    lopts.resources = tight_units();
    const Schedule heuristic = list_schedule(g, lopts);
    EXPECT_LE(exact.latency, heuristic.length(g));
  }
}

TEST(OccupancyCrosscheckTest, FdsMeetsTheListLatencyOnKernels) {
  // FDS is time-constrained: given a small slack over the dyno-delay
  // critical path it must produce a precedence-legal schedule within
  // the bound.
  for (const Graph& g : kernel_suite()) {
    SCOPED_TRACE(g.name());
    FdsOptions fopts;
    fopts.latency = cdfg::critical_path_length(g) + 2;
    const Schedule s = force_directed_schedule(g, fopts);
    const ScheduleCheck chk =
        verify_schedule(g, s, cdfg::EdgeFilter::all(),
                        ResourceSet::unlimited(), fopts.latency);
    EXPECT_TRUE(chk.ok) << (chk.errors.empty() ? "" : chk.errors.front());
  }
}

TEST(OccupancyCrosscheckTest, MediabenchSweepUnderDyno) {
  const cdfg::DelayModel model = cdfg::DelayModel::dyno(16);
  for (const dfglib::MediabenchApp& app : dfglib::mediabench_table()) {
    Graph g = dfglib::make_mediabench_app(app);
    (void)model.annotate(g);
    SCOPED_TRACE(g.name());
    for (const bool pipelined : {false, true}) {
      ListScheduleOptions opts;
      opts.resources = tight_units();
      opts.pipelined_units = pipelined;
      const Schedule s = list_schedule(g, opts);
      EXPECT_TRUE(verify_schedule(g, s, cdfg::EdgeFilter::all(),
                                  opts.resources, -1, pipelined)
                      .ok)
          << "pipelined=" << pipelined;
    }
  }
}

}  // namespace
}  // namespace lwm::sched
