#include "hls/datapath.h"

#include <gtest/gtest.h>

#include "dfglib/iir4.h"
#include "dfglib/synth.h"
#include "sched/schedule.h"
#include "wm/reg_constraints.h"
#include "wm/sched_constraints.h"

namespace lwm::hls {
namespace {

using cdfg::Graph;

TEST(DatapathTest, IirAtCriticalPath) {
  const Graph g = lwm::dfglib::iir4_parallel();
  const Datapath dp = synthesize_datapath(g);
  EXPECT_EQ(dp.latency, cdfg::critical_path_length(g));
  EXPECT_GT(dp.total_units(), 0);
  EXPECT_GT(dp.registers, 0);
  // The schedule respects the derived resource vector.
  sched::ResourceSet res = sched::ResourceSet::unlimited();
  res.set_count(cdfg::UnitClass::kAlu,
                dp.units[static_cast<std::size_t>(cdfg::UnitClass::kAlu)]);
  res.set_count(cdfg::UnitClass::kMul,
                dp.units[static_cast<std::size_t>(cdfg::UnitClass::kMul)]);
  EXPECT_TRUE(sched::verify_schedule(g, dp.schedule, cdfg::EdgeFilter::all(),
                                     res, dp.latency)
                  .ok);
  // Binding is legal for the schedule's lifetimes.
  const auto lifetimes = regbind::compute_lifetimes(g, dp.schedule);
  EXPECT_TRUE(regbind::verify_binding(lifetimes, dp.binding).ok);
}

TEST(DatapathTest, RelaxedBudgetTradesLatencyForArea) {
  const Graph g = lwm::dfglib::make_dsp_design("dp_trade", 12, 120, 201);
  const int cp = cdfg::critical_path_length(g);
  const Datapath tight = synthesize_datapath(g, {.latency = cp});
  DatapathOptions relaxed;
  relaxed.latency = 3 * cp;
  const Datapath loose = synthesize_datapath(g, relaxed);
  EXPECT_LE(loose.total_units(), tight.total_units());
  EXPECT_GE(loose.latency, 0);
  EXPECT_LE(loose.latency, 3 * cp);
  EXPECT_LE(tight.latency, cp);
}

TEST(DatapathTest, AreaBreakdownPositiveAndMonotone) {
  const Graph g = lwm::dfglib::make_dsp_design("dp_area", 12, 80, 202);
  DatapathOptions opts;
  const Datapath dp = synthesize_datapath(g, opts);
  EXPECT_GT(dp.area(opts), 0.0);
  DatapathOptions pricier = opts;
  pricier.register_area *= 10;
  EXPECT_GT(dp.area(pricier), dp.area(opts));
  EXPECT_NE(dp.to_string(opts).find("regs="), std::string::npos);
}

TEST(DatapathTest, WatermarkEdgesRaiseCostObservably) {
  Graph g = lwm::dfglib::make_dsp_design("dp_wm", 14, 160, 203);
  const crypto::Signature sig("dp", "datapath-key");
  const Datapath baseline = synthesize_datapath(
      g, {.filter = cdfg::EdgeFilter::specification()});

  wm::SchedWmOptions wopts;
  wopts.domain.tau = 5;
  wopts.k = 3;
  wopts.epsilon = 0.3;
  const auto marks = wm::embed_local_watermarks(g, sig, 4, wopts);
  ASSERT_FALSE(marks.empty());
  const Datapath marked = synthesize_datapath(g);  // honors temporal edges
  // The watermarked datapath can cost more but never less work.
  EXPECT_GE(marked.latency, 0);
  // The marked schedule satisfies the constraints end to end.
  for (const auto& m : marks) {
    for (const auto& c : m.constraints) {
      EXPECT_LE(marked.schedule.start_of(c.src) + g.node(c.src).delay,
                marked.schedule.start_of(c.dst));
    }
  }
  EXPECT_GT(baseline.total_units(), 0);
}

TEST(DatapathTest, RegisterConstraintsFlowThrough) {
  const Graph g = lwm::dfglib::make_dsp_design("dp_reg", 14, 160, 204);
  const crypto::Signature sig("dp", "datapath-key");
  const Datapath plain = synthesize_datapath(g);
  const auto lifetimes = regbind::compute_lifetimes(g, plain.schedule);
  wm::RegWmOptions ropts;
  ropts.domain.tau = 5;
  ropts.m = 3;
  const auto marks = wm::plan_reg_watermarks(g, lifetimes, sig, 3, ropts);
  ASSERT_FALSE(marks.empty());

  DatapathOptions opts;
  opts.reg_constraints = wm::to_binding_constraints(marks);
  const Datapath constrained = synthesize_datapath(g, opts);
  for (const auto& m : marks) {
    for (const auto& c : m.constraints) {
      EXPECT_EQ(constrained.binding.reg(c.u), constrained.binding.reg(c.v));
    }
  }
  EXPECT_GE(constrained.registers, plain.registers);
}

TEST(DatapathTest, InfeasibleRegisterConstraintsThrow) {
  const Graph g = lwm::dfglib::iir4_parallel();
  DatapathOptions opts;
  // share + separate on the same pair is contradictory under any
  // schedule.
  opts.reg_constraints.share.emplace_back(g.find("A1"), g.find("A9"));
  opts.reg_constraints.separate.emplace_back(g.find("A1"), g.find("A9"));
  EXPECT_THROW((void)synthesize_datapath(g, opts), std::invalid_argument);
}

TEST(DatapathTest, MuxCountReflectsSharing) {
  // Heavy sharing (tight units, long latency) must imply muxing; a fully
  // spatial design (everything parallel, one op per unit) needs none.
  const Graph g = lwm::dfglib::make_dsp_design("dp_mux", 10, 80, 205);
  const int cp = cdfg::critical_path_length(g);
  DatapathOptions shared;
  shared.latency = 4 * cp;
  const Datapath dp = synthesize_datapath(g, shared);
  EXPECT_GT(dp.mux_inputs, 0) << "time-multiplexed units need steering";
}

}  // namespace
}  // namespace lwm::hls
