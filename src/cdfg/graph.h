// graph.h — the control/data-flow graph (CDFG) at the heart of the library.
//
// Syntax follows the paper's CDFG format: a flow graph with nodes, data
// edges, and control edges; semantics are homogeneous SDF.  In addition to
// data and control edges the graph supports *temporal* edges — the extra
// precedence constraints ("standard nomenclature for behavioral
// descriptions, e.g. HYPER") that the watermarking protocol augments and
// later strips from the specification.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cdfg/op.h"

namespace lwm::cdfg {

/// Strongly typed node handle.  Indexes are stable for the lifetime of the
/// graph (removal uses tombstones, never reindexing), so NodeIds may be
/// stored across mutations.
struct NodeId {
  std::uint32_t value = std::numeric_limits<std::uint32_t>::max();

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const noexcept {
    return value != std::numeric_limits<std::uint32_t>::max();
  }
  friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

/// Strongly typed edge handle; same stability guarantees as NodeId.
struct EdgeId {
  std::uint32_t value = std::numeric_limits<std::uint32_t>::max();

  constexpr EdgeId() = default;
  constexpr explicit EdgeId(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const noexcept {
    return value != std::numeric_limits<std::uint32_t>::max();
  }
  friend constexpr auto operator<=>(EdgeId, EdgeId) = default;
};

/// Edge flavor.  All three impose precedence on a legal schedule; they
/// differ in provenance: data edges carry values, control edges sequence
/// operations for control-flow reasons, temporal edges exist only to
/// encode watermark constraints (and are stripped after synthesis).
enum class EdgeKind : std::uint8_t { kData, kControl, kTemporal };

std::string_view edge_kind_name(EdgeKind k) noexcept;

/// A CDFG operation node.
///
/// Delays are *dynamically bounded* (the source paper's model): an
/// operation completes somewhere in [delay_min, delay] control steps,
/// where the realization depends on data/operating conditions the
/// scheduler cannot observe.  `delay` is the upper bound d_max — the
/// value every scheduler and timing analysis constrains against, so a
/// schedule is legal for *any* realization of the delays.  `delay_min`
/// is the lower bound d_min used by the optimistic side of the bounded
/// timing analyses (compute_timing_bounded, TimingCache min-windows,
/// k-worst path min lengths).  The default is an exact interval
/// (delay_min == delay), which keeps every unit-delay code path
/// bit-identical to the pre-bounded behavior.
struct Node {
  OpKind kind = OpKind::kAdd;
  std::string name;   ///< human-readable label (unique per graph)
  int delay = 1;      ///< upper-bound latency d_max, in control steps
  int delay_min = 1;  ///< lower-bound latency d_min (<= delay)

  /// True when the delay interval is non-degenerate (d_min < d_max).
  [[nodiscard]] bool bounded_delay() const noexcept {
    return delay_min != delay;
  }
};

/// A directed edge between two nodes.
///
/// `tokens` is the marked-graph initial-token count (homogeneous SDF):
/// a value of 0 is an ordinary same-iteration precedence edge, a value
/// of k > 0 marks a loop-carried dependence whose consumer reads the
/// producer's value from k iterations earlier.  Under a periodic
/// schedule with initiation interval II the constraint becomes
/// start(dst) + k * II >= start(src) + delay(src).  Token-carrying
/// edges are the only edges allowed to close a cycle.
struct Edge {
  NodeId src;
  NodeId dst;
  EdgeKind kind = EdgeKind::kData;
  int tokens = 0;  ///< initial tokens (marked-graph back-edge iff > 0)

  /// True for a loop-carried (inter-iteration) dependence.
  [[nodiscard]] bool carried() const noexcept { return tokens > 0; }
};

/// Mutable CDFG.
///
/// Invariants (checked by validate.h):
///   * the precedence relation over live *token-free* edges is acyclic
///     (every cycle must pass through at least one edge with tokens > 0);
///   * node names are unique;
///   * source/sink pseudo-ops have no fan-in / fan-out respectively.
///
/// Fan-in edge lists preserve insertion order — the watermarking domain-
/// identification step depends on a deterministic, reproducible ordering
/// of each node's inputs.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction -----------------------------------------------------

  /// Adds a node.  If `name` is empty a unique "<op><index>" label is
  /// generated.  If `delay` is negative the op's default latency is used.
  NodeId add_node(OpKind kind, std::string name = {}, int delay = -1);

  /// Adds a directed edge.  Both endpoints must be live; they must be
  /// distinct unless the edge carries tokens (a self-loop models an op
  /// that consumes its own previous-iteration result).  Duplicate
  /// parallel edges are allowed (commutative two-input ops may read the
  /// same value twice).  `tokens` must be non-negative.
  EdgeId add_edge(NodeId src, NodeId dst, EdgeKind kind = EdgeKind::kData,
                  int tokens = 0);

  /// Tombstones an edge.  Handles to other edges remain valid.
  void remove_edge(EdgeId e);

  /// Tombstones a node and every edge incident to it.
  void remove_node(NodeId n);

  /// Renames a live node.  The new name must stay unique (checked by
  /// validate(), not here).  Detection never reads names — this exists
  /// so tests can model a renaming adversary and tools can relabel.
  void rename_node(NodeId n, std::string name);

  /// Sets a node's bounded delay interval [dmin, dmax].  Requires
  /// 0 <= dmin <= dmax; throws std::invalid_argument otherwise.  The
  /// upper bound dmax is what every scheduler constrains against (it
  /// replaces Node::delay); dmin feeds the optimistic timing analyses.
  void set_delay_bounds(NodeId n, int dmin, int dmax);

  /// True if any live node carries a non-degenerate delay interval
  /// (delay_min < delay).  O(node_capacity) scan — callers that need it
  /// repeatedly (TimingCache, GraphSoA) query once at freeze time.
  [[nodiscard]] bool has_bounded_delays() const noexcept;

  /// True if any live edge carries initial tokens (tokens > 0) — i.e.
  /// the graph is a marked graph with loop-carried dependences and only
  /// periodic-capable schedulers may run on it unfiltered.  O(edge
  /// capacity) scan, same caching advice as has_bounded_delays().
  [[nodiscard]] bool has_token_edges() const noexcept;

  /// Removes every temporal edge — the post-synthesis "strip the
  /// watermark constraints from the optimized specification" step.
  /// Returns the number of edges removed.
  int strip_temporal_edges();

  // ---- queries ------------------------------------------------------------

  [[nodiscard]] bool is_live(NodeId n) const noexcept;
  [[nodiscard]] bool is_live(EdgeId e) const noexcept;

  /// Live node/edge counts (tombstoned entries excluded).
  [[nodiscard]] std::size_t node_count() const noexcept { return live_nodes_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return live_edges_; }

  /// Upper bound on NodeId::value + 1 (array-sizing helper).
  [[nodiscard]] std::size_t node_capacity() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_capacity() const noexcept { return edges_.size(); }

  /// Node/edge payloads.  Precondition: handle is live.
  [[nodiscard]] const Node& node(NodeId n) const;
  [[nodiscard]] const Edge& edge(EdgeId e) const;

  /// Edges into / out of `n`, in insertion order; tombstoned edges are
  /// excluded (the lists are maintained eagerly on removal).
  [[nodiscard]] std::span<const EdgeId> fanin(NodeId n) const;
  [[nodiscard]] std::span<const EdgeId> fanout(NodeId n) const;

  /// All live node ids in ascending id order.
  [[nodiscard]] std::vector<NodeId> node_ids() const;

  /// All live edge ids in ascending id order.
  [[nodiscard]] std::vector<EdgeId> edge_ids() const;

  /// Live edges of one kind.
  [[nodiscard]] std::vector<EdgeId> edges_of_kind(EdgeKind k) const;

  /// Allocation-free forward range over live ids in ascending order —
  /// the hot-path alternative to node_ids()/edge_ids(), which build a
  /// fresh vector per call.  The view walks the liveness bitmap lazily;
  /// it is invalidated by add_node()/add_edge() (reallocation), but
  /// tombstoning mid-iteration is safe (already-yielded ids stay valid).
  template <typename Id>
  class LiveIdRange {
   public:
    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = Id;
      using difference_type = std::ptrdiff_t;

      iterator() = default;
      iterator(const std::vector<bool>* live, std::uint32_t i) noexcept
          : live_(live), i_(i) {
        skip_dead();
      }
      Id operator*() const noexcept { return Id{i_}; }
      iterator& operator++() noexcept {
        ++i_;
        skip_dead();
        return *this;
      }
      iterator operator++(int) noexcept {
        iterator tmp = *this;
        ++*this;
        return tmp;
      }
      friend bool operator==(const iterator& a, const iterator& b) noexcept {
        return a.i_ == b.i_;
      }
      friend bool operator!=(const iterator& a, const iterator& b) noexcept {
        return a.i_ != b.i_;
      }

     private:
      void skip_dead() noexcept {
        while (i_ < live_->size() && !(*live_)[i_]) ++i_;
      }
      const std::vector<bool>* live_ = nullptr;
      std::uint32_t i_ = 0;
    };

    explicit LiveIdRange(const std::vector<bool>& live) noexcept
        : live_(&live) {}
    [[nodiscard]] iterator begin() const noexcept { return {live_, 0}; }
    [[nodiscard]] iterator end() const noexcept {
      return {live_, static_cast<std::uint32_t>(live_->size())};
    }

   private:
    const std::vector<bool>* live_;
  };

  /// Live edges of one kind, lazily filtered (no allocation).
  class EdgeKindRange {
   public:
    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = EdgeId;
      using difference_type = std::ptrdiff_t;

      iterator() = default;
      iterator(const Graph* g, EdgeKind kind, std::uint32_t i) noexcept
          : g_(g), kind_(kind), i_(i) {
        skip_mismatch();
      }
      EdgeId operator*() const noexcept { return EdgeId{i_}; }
      iterator& operator++() noexcept {
        ++i_;
        skip_mismatch();
        return *this;
      }
      iterator operator++(int) noexcept {
        iterator tmp = *this;
        ++*this;
        return tmp;
      }
      friend bool operator==(const iterator& a, const iterator& b) noexcept {
        return a.i_ == b.i_;
      }
      friend bool operator!=(const iterator& a, const iterator& b) noexcept {
        return a.i_ != b.i_;
      }

     private:
      void skip_mismatch() noexcept {
        while (i_ < g_->edges_.size() &&
               (!g_->edge_live_[i_] || g_->edges_[i_].kind != kind_)) {
          ++i_;
        }
      }
      const Graph* g_ = nullptr;
      EdgeKind kind_ = EdgeKind::kData;
      std::uint32_t i_ = 0;
    };

    EdgeKindRange(const Graph* g, EdgeKind kind) noexcept
        : g_(g), kind_(kind) {}
    [[nodiscard]] iterator begin() const noexcept { return {g_, kind_, 0}; }
    [[nodiscard]] iterator end() const noexcept {
      return {g_, kind_, static_cast<std::uint32_t>(g_->edges_.size())};
    }

   private:
    const Graph* g_;
    EdgeKind kind_;
  };

  /// Live node ids, ascending, without the node_ids() allocation.
  [[nodiscard]] LiveIdRange<NodeId> nodes() const noexcept {
    return LiveIdRange<NodeId>(node_live_);
  }
  /// Live edge ids, ascending, without the edge_ids() allocation.
  [[nodiscard]] LiveIdRange<EdgeId> edges() const noexcept {
    return LiveIdRange<EdgeId>(edge_live_);
  }
  /// Live edges of one kind, without the edges_of_kind() allocation.
  [[nodiscard]] EdgeKindRange edges_of(EdgeKind k) const noexcept {
    return EdgeKindRange(this, k);
  }

  /// Looks a node up by its unique name; invalid NodeId if absent.
  [[nodiscard]] NodeId find(std::string_view name) const noexcept;

  /// Count of live executable nodes (the paper's "number of operations N";
  /// inputs/outputs/constants excluded).
  [[nodiscard]] std::size_t operation_count() const;

  /// True if an edge src->dst of the given kind is present (live).
  [[nodiscard]] bool has_edge(NodeId src, NodeId dst, EdgeKind kind) const;

 private:
  void check_live(NodeId n) const;
  void check_live(EdgeId e) const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<bool> node_live_;
  std::vector<bool> edge_live_;
  std::vector<std::vector<EdgeId>> fanin_;
  std::vector<std::vector<EdgeId>> fanout_;
  std::size_t live_nodes_ = 0;
  std::size_t live_edges_ = 0;
};

}  // namespace lwm::cdfg

template <>
struct std::hash<lwm::cdfg::NodeId> {
  std::size_t operator()(lwm::cdfg::NodeId n) const noexcept {
    return std::hash<std::uint32_t>{}(n.value);
  }
};

template <>
struct std::hash<lwm::cdfg::EdgeId> {
  std::size_t operator()(lwm::cdfg::EdgeId e) const noexcept {
    return std::hash<std::uint32_t>{}(e.value);
  }
};
