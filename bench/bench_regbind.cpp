// bench_regbind — the third synthesis task: local watermarking of
// register binding (an extension built with the paper's generic recipe;
// the paper's §III presents local watermarking as applicable to any
// combinatorial synthesis step, and scheduling fixes the variable
// lifetimes that binding consumes).
//
// Sweeps the number of hidden register-sharing pairs and reports proof
// strength against register-count overhead over the LEFT-EDGE optimum.
#include <cstdio>
#include <vector>

#include "bench_io.h"
#include "dfglib/synth.h"
#include "sched/list_sched.h"
#include "table.h"
#include "wm/reg_constraints.h"

using namespace lwm;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv, "BENCH_regbind.json");
  const bench::Stopwatch wall;
  std::printf("== Register-binding watermarks: proof vs register overhead ==\n\n");

  const crypto::Signature author("author", "regbind-bench-key");
  const cdfg::Graph g =
      dfglib::make_dsp_design("regbind_bench", 16, args.smoke ? 90 : 260, 4747);
  const sched::Schedule s = sched::list_schedule(g);
  const auto lifetimes = regbind::compute_lifetimes(g, s);
  const auto free_binding = regbind::left_edge_binding(lifetimes);
  if (!free_binding) {
    std::printf("FAILED: unconstrained binding\n");
    return 1;
  }
  std::printf("design: %zu ops, %zu variables, max-live %d, "
              "LEFT-EDGE registers %d\n\n",
              g.operation_count(), lifetimes.size(),
              regbind::max_live(lifetimes), free_binding->register_count);

  bench::Table t({"watermarks", "share pairs", "log10 Pc", "registers",
                  "register OH", "detected"});
  int last_registers = free_binding->register_count;
  int last_detected = 0;
  double last_pc = 0.0;
  const std::vector<int> counts =
      args.smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  for (const int count : counts) {
    wm::RegWmOptions opts;
    opts.domain.tau = 5;
    opts.m = 3;
    const auto marks =
        wm::plan_reg_watermarks(g, lifetimes, author, count, opts);
    int pairs = 0;
    for (const auto& m : marks) pairs += static_cast<int>(m.constraints.size());
    const auto binding = regbind::left_edge_binding(
        lifetimes, wm::to_binding_constraints(marks));
    if (!binding) {
      t.add_row({bench::fmt_int(count), bench::fmt_int(pairs), "-", "-",
                 "infeasible", "-"});
      continue;
    }
    int detected = 0;
    for (const auto& m : marks) {
      detected += wm::detect_reg_watermark(g, lifetimes, *binding, author,
                                           wm::RegRecord::from(m, g))
                      .detected();
    }
    const double pc = wm::log10_reg_pc(g, lifetimes, marks);
    last_registers = binding->register_count;
    last_detected = detected;
    last_pc = pc;
    t.add_row({bench::fmt_int(static_cast<long long>(marks.size())),
               bench::fmt_int(pairs), bench::fmt("%.2f", pc),
               bench::fmt_int(binding->register_count),
               bench::fmt("%.1f%%",
                          100.0 * (binding->register_count -
                                   free_binding->register_count) /
                              free_binding->register_count),
               bench::fmt_int(detected) + "/" +
                   bench::fmt_int(static_cast<long long>(marks.size()))});
  }
  t.print();

  std::printf("\nshape checks:\n");
  std::printf("  * proof strengthens with the number of hidden pairs\n");
  std::printf("  * register overhead stays within a few registers of the "
              "LEFT-EDGE optimum\n");

  bench::JsonObject json;
  json.add("bench", std::string("regbind"));
  json.add("threads", args.threads);
  json.add("variables", static_cast<long long>(lifetimes.size()));
  json.add("registers_free", free_binding->register_count);
  json.add("registers_marked_max", last_registers);
  json.add("detected_max", last_detected);
  json.add("log10_pc_max", last_pc);
  json.add("wall_ms", wall.elapsed_ms());
  bench::attach_obs(json, args);
  return json.write(args.json_path) ? 0 : 1;
}
