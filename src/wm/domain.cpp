#include "wm/domain.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.h"

namespace lwm::wm {

using cdfg::EdgeId;
using cdfg::Graph;
using cdfg::NodeId;

namespace {

/// Per-node ordering features inside a locality.
struct Features {
  NodeId node;
  int discovery = 0;              ///< BFS discovery position (final tie-break)
  int level = 0;                  ///< C1
  std::vector<int> cone_size;     ///< C2: K(x) for x = 1..tau
  std::vector<long long> cone_phi;  ///< C3: phi(x) for x = 1..tau
};

/// The edge predicate of the carve: must match the fanin_cone filter
/// exactly, or a locality would order differently from how it was
/// discovered.  specification() excludes temporal (watermark) edges and
/// loop-carried token edges alike — a marked graph carves identically
/// to its acyclic skeleton, so marks embedded before the feedback edges
/// were closed stay detectable after.
bool carve_accepts(const cdfg::Edge& e) {
  return cdfg::EdgeFilter::specification().accepts(e);
}

/// In-cone data/control producers of `n`, first-occurrence order.
std::vector<NodeId> cone_inputs(const Graph& g, NodeId n,
                                const std::unordered_set<NodeId>& cone) {
  std::vector<NodeId> inputs;
  for (EdgeId e : g.fanin(n)) {
    const cdfg::Edge& ed = g.edge(e);
    if (!carve_accepts(ed)) continue;
    if (cone.count(ed.src) == 0) continue;
    if (std::find(inputs.begin(), inputs.end(), ed.src) == inputs.end()) {
      inputs.push_back(ed.src);
    }
  }
  return inputs;
}

}  // namespace

std::vector<NodeId> order_locality(const Graph& g, NodeId root, int tau) {
  if (tau <= 0) {
    throw std::invalid_argument("order_locality: tau must be positive");
  }
  const std::vector<cdfg::ConeNode> cone_nodes =
      cdfg::fanin_cone(g, root, tau, cdfg::EdgeFilter::specification());

  std::unordered_set<NodeId> cone;
  for (const cdfg::ConeNode& c : cone_nodes) cone.insert(c.node);

  // C1: levels — longest path from root over in-cone fan-in edges.
  // Computed entirely inside the cone: a Kahn pass over the transposed
  // induced subgraph (edges consumer -> producer, rooted at n_o) visits
  // every node after all of its in-cone consumers, which is exactly the
  // order the old reverse-global-topo sweep established — but without
  // walking the whole CDFG per candidate root, which detection cannot
  // afford at mega-design scale (one carve per scanned root).
  std::unordered_map<NodeId, int> level;
  level.reserve(cone_nodes.size());
  std::unordered_map<NodeId, int> pending;  // unprocessed in-cone consumers
  pending.reserve(cone_nodes.size());
  for (const cdfg::ConeNode& c : cone_nodes) pending[c.node] = 0;
  // Count in-cone consumer edges from the fan-in side: cone members have
  // bounded fan-in, but a hub node (a broadcast value in a mega-design)
  // can have fan-out in the thousands, and iterating it once per carve
  // at every scanned root dominated detection.
  for (const cdfg::ConeNode& c : cone_nodes) {
    for (EdgeId e : g.fanin(c.node)) {
      const cdfg::Edge& ed = g.edge(e);
      if (!carve_accepts(ed)) continue;
      const auto it = pending.find(ed.src);
      if (it != pending.end()) ++it->second;
    }
  }
  // The root is the unique transposed source: a cone member consuming the
  // root would close a cycle, and every other cone node has at least one
  // in-cone consumer (its BFS parent toward the root).
  std::deque<NodeId> ready{root};
  level[root] = 0;
  while (!ready.empty()) {
    const NodeId n = ready.front();
    ready.pop_front();
    const int next = level.at(n) + 1;
    for (EdgeId e : g.fanin(n)) {
      const cdfg::Edge& ed = g.edge(e);
      if (!carve_accepts(ed)) continue;
      if (cone.count(ed.src) == 0) continue;
      const auto li = level.find(ed.src);
      if (li == level.end()) {
        level[ed.src] = next;
      } else if (next > li->second) {
        li->second = next;
      }
      if (--pending.at(ed.src) == 0) ready.push_back(ed.src);
    }
  }

  // C2/C3: bounded in-cone fan-in sweeps per node.
  auto sweep = [&](NodeId n, std::vector<int>& sizes,
                   std::vector<long long>& phis) {
    std::unordered_map<NodeId, int> dist;
    dist[n] = 0;
    std::deque<NodeId> queue{n};
    sizes.assign(static_cast<std::size_t>(tau), 0);
    phis.assign(static_cast<std::size_t>(tau), 0);
    long long phi_self = cdfg::functional_id(g.node(n).kind);
    while (!queue.empty()) {
      const NodeId m = queue.front();
      queue.pop_front();
      const int dm = dist[m];
      if (dm >= tau) continue;
      for (const NodeId p : cone_inputs(g, m, cone)) {
        if (dist.count(p) != 0) continue;
        dist[p] = dm + 1;
        queue.push_back(p);
      }
    }
    for (const auto& [m, dm] : dist) {
      if (m == n) continue;
      for (int x = dm; x <= tau; ++x) {
        ++sizes[static_cast<std::size_t>(x - 1)];
        phis[static_cast<std::size_t>(x - 1)] += cdfg::functional_id(g.node(m).kind);
      }
    }
    for (int x = 1; x <= tau; ++x) {
      phis[static_cast<std::size_t>(x - 1)] += phi_self;
    }
  };

  std::vector<Features> feats;
  feats.reserve(cone_nodes.size());
  for (std::size_t i = 0; i < cone_nodes.size(); ++i) {
    Features f;
    f.node = cone_nodes[i].node;
    f.discovery = static_cast<int>(i);
    f.level = level.at(f.node);
    sweep(f.node, f.cone_size, f.cone_phi);
    feats.push_back(std::move(f));
  }

  std::sort(feats.begin(), feats.end(), [tau](const Features& a, const Features& b) {
    if (a.level != b.level) return a.level > b.level;  // C1: deeper first
    for (int x = 0; x < tau; ++x) {                    // C2 at growing x
      const auto xi = static_cast<std::size_t>(x);
      if (a.cone_size[xi] != b.cone_size[xi]) return a.cone_size[xi] > b.cone_size[xi];
    }
    for (int x = 0; x < tau; ++x) {                    // C3 at growing x
      const auto xi = static_cast<std::size_t>(x);
      if (a.cone_phi[xi] != b.cone_phi[xi]) return a.cone_phi[xi] > b.cone_phi[xi];
    }
    return a.discovery < b.discovery;                  // structural tie-break
  });

  std::vector<NodeId> out;
  out.reserve(feats.size());
  for (const Features& f : feats) out.push_back(f.node);
  return out;
}

Domain select_domain(const Graph& g, NodeId root, const crypto::Signature& sig,
                     const DomainKey& key) {
  Domain d;
  d.root = root;
  d.ordered = order_locality(g, root, key.tau);

  std::unordered_set<NodeId> cone(d.ordered.begin(), d.ordered.end());
  std::unordered_set<NodeId> selected{root};

  // Inputs are identified by their unique (C1-C3) rank in the ordered
  // locality — "the selection process cannot be misinterpreted because
  // of the unique identification of each node input."  Ranking, unlike
  // raw fan-in list order, is invariant under edge re-insertion (e.g. a
  // detector that collapsed decoy operations out of a tampered design).
  std::unordered_map<NodeId, int> rank;
  for (std::size_t i = 0; i < d.ordered.size(); ++i) {
    rank[d.ordered[i]] = static_cast<int>(i);
  }
  auto ranked_inputs = [&](NodeId n) {
    std::vector<NodeId> inputs = cone_inputs(g, n, cone);
    std::sort(inputs.begin(), inputs.end(),
              [&](NodeId a, NodeId b) { return rank.at(a) < rank.at(b); });
    return inputs;
  };

  crypto::Bitstream stream = sig.stream(DomainKey::kCarveTag);

  // Top-down breadth-first carving: "at least one input to include in the
  // next level ... whether each of the remaining inputs should be
  // included".
  std::deque<NodeId> queue{root};
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    const std::vector<NodeId> inputs = ranked_inputs(n);
    if (inputs.empty()) continue;
    const std::uint32_t mandatory =
        stream.next_uint(static_cast<std::uint32_t>(inputs.size()));
    for (std::uint32_t i = 0; i < inputs.size(); ++i) {
      bool include = (i == mandatory);
      if (!include) include = stream.bernoulli(key.keep_num, key.keep_den);
      if (include && selected.insert(inputs[i]).second) {
        queue.push_back(inputs[i]);
      }
    }
  }

  for (const NodeId n : d.ordered) {
    if (selected.count(n) != 0) d.selected.push_back(n);
  }
  LWM_COUNT("wm/domains_carved", 1);
  LWM_HIST("wm/domain_size", d.selected.size());
  return d;
}

NodeId pick_root(const Graph& g, crypto::Bitstream& stream) {
  std::vector<NodeId> ops;
  for (NodeId n : g.nodes()) {
    if (cdfg::is_executable(g.node(n).kind)) ops.push_back(n);
  }
  if (ops.empty()) {
    throw std::invalid_argument("pick_root: graph has no operations");
  }
  return ops[stream.next_uint(static_cast<std::uint32_t>(ops.size()))];
}

}  // namespace lwm::wm
