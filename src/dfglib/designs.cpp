#include "dfglib/designs.h"

#include "dfglib/synth.h"

namespace lwm::dfglib {

const std::vector<Table2Design>& table2_designs() {
  // {name, {budget row 1, budget row 2}, critical path, variables, % enf.}
  // Note: the paper's two rows per design vary *either* the available
  // control steps (x1 / x2 the critical path) — we reproduce that axis.
  static const std::vector<Table2Design> kDesigns = {
      {"8th Order CF IIR", {18, 36}, 18, 35, 3.0},
      {"Linear GE Cntrlr", {12, 24}, 12, 48, 5.0},
      {"Wavelet Filter", {16, 32}, 16, 31, 4.0},
      {"Modem Filter", {10, 20}, 10, 33, 5.0},
      {"Volterra 2nd ord.", {12, 24}, 12, 28, 5.0},
      {"Volterra 3rd non-lin.", {20, 40}, 20, 50, 3.0},
      {"D/A Converter", {132, 264}, 132, 354, 4.0},
      {"Long Echo Canceler", {2566, 5132}, 2566, 1082, 2.0},
  };
  return kDesigns;
}

cdfg::Graph make_table2_design(const Table2Design& d) {
  std::uint64_t seed = 0xc2b2ae3d27d4eb4full;
  for (const char c : d.name) seed = seed * 131 + static_cast<unsigned char>(c);
  return make_dsp_design(d.name, d.critical_path, d.variables, seed);
}

}  // namespace lwm::dfglib
