#include "cdfg/delay_model.h"

#include <bit>
#include <stdexcept>

namespace lwm::cdfg {

namespace {

// floor(log2(x)) for x >= 1; 0 otherwise.  Integer math on purpose: the
// delay tables must be bit-reproducible across platforms, so no libm.
int ilog2(int x) noexcept {
  if (x < 1) return 0;
  return 31 - std::countl_zero(static_cast<unsigned>(x));
}

// Opcodes whose worst case grows with the carry chain of the datapath.
bool has_carry_chain(OpKind k) noexcept {
  return k == OpKind::kAdd || k == OpKind::kSub || k == OpKind::kCmp;
}

// Opcodes implemented as reduction trees (deeper width dependence).
bool is_tree_op(OpKind k) noexcept {
  return k == OpKind::kMul || k == OpKind::kDiv;
}

}  // namespace

DelayModel::DelayModel() {
  for (int i = 0; i < kNumOpKinds; ++i) {
    const int d = default_delay(static_cast<OpKind>(i));
    base_[static_cast<std::size_t>(i)] = DelayBounds{d, d};
  }
}

DelayModel DelayModel::exact() { return DelayModel{}; }

DelayModel DelayModel::dyno(int bit_width) {
  if (bit_width < 1) {
    throw std::invalid_argument("DelayModel::dyno: bit_width must be >= 1, got " +
                                std::to_string(bit_width));
  }
  DelayModel m;
  m.set_bit_width(bit_width);
  m.set_fanout_threshold(4);
  // Base intervals in the dyno-ir DelayAnalysis shape: cheap exact logic,
  // a slightly wider mux, and memory ops whose latency is inherently
  // data/placement dependent (cache-like [hit, miss] interval).
  m.set_base(OpKind::kAnd, 1, 1);
  m.set_base(OpKind::kOr, 1, 1);
  m.set_base(OpKind::kNot, 1, 1);
  m.set_base(OpKind::kXor, 1, 2);
  m.set_base(OpKind::kShift, 1, 1);
  m.set_base(OpKind::kMux, 1, 2);
  m.set_base(OpKind::kAdd, 1, 1);
  m.set_base(OpKind::kSub, 1, 1);
  m.set_base(OpKind::kCmp, 1, 1);
  m.set_base(OpKind::kMul, 2, 2);
  m.set_base(OpKind::kDiv, 2, 4);
  m.set_base(OpKind::kLoad, 1, 3);
  m.set_base(OpKind::kStore, 1, 2);
  m.set_base(OpKind::kBranch, 1, 1);
  m.set_base(OpKind::kUnit, 1, 1);
  return m;
}

DelayModel& DelayModel::set_base(OpKind k, int dmin, int dmax) {
  if (dmin < 0 || dmax < dmin) {
    throw std::invalid_argument(
        "DelayModel::set_base: need 0 <= dmin <= dmax, got [" +
        std::to_string(dmin) + ", " + std::to_string(dmax) + "] for op '" +
        std::string(op_name(k)) + "'");
  }
  base_[static_cast<std::size_t>(k)] = DelayBounds{dmin, dmax};
  overridden_ = true;
  return *this;
}

DelayModel& DelayModel::set_bit_width(int bits) {
  if (bits < 0) {
    throw std::invalid_argument("DelayModel::set_bit_width: negative width " +
                                std::to_string(bits));
  }
  bit_width_ = bits;
  return *this;
}

DelayModel& DelayModel::set_fanout_threshold(int threshold) {
  if (threshold < 0) {
    throw std::invalid_argument(
        "DelayModel::set_fanout_threshold: negative threshold " +
        std::to_string(threshold));
  }
  fanout_threshold_ = threshold;
  return *this;
}

DelayBounds DelayModel::bounds(OpKind k, int fanout) const noexcept {
  DelayBounds b = base_[static_cast<std::size_t>(k)];
  if (bit_width_ > 1 && is_executable(k)) {
    int term = 0;
    if (has_carry_chain(k)) {
      term = ilog2(bit_width_);  // carry-lookahead depth
    } else if (is_tree_op(k)) {
      term = 2 * ilog2(bit_width_);  // compression tree + final carry
    }
    // Worst case sees the full chain; best case completes early once
    // the data-dependent carry settles — half the depth.
    b.max += term;
    b.min += term / 2;
  }
  if (fanout_threshold_ > 0 && fanout > fanout_threshold_) {
    b.max += ilog2(fanout);  // buffer-tree depth, worst case only
  }
  if (b.min > b.max) b.min = b.max;  // defensive; unreachable by math above
  return b;
}

bool DelayModel::is_exact() const noexcept {
  return !overridden_ && bit_width_ <= 1 && fanout_threshold_ == 0;
}

int DelayModel::annotate(Graph& g) const {
  int changed = 0;
  for (NodeId n : g.nodes()) {
    const Node& node = g.node(n);
    const DelayBounds b =
        bounds(node.kind, static_cast<int>(g.fanout(n).size()));
    if (node.delay_min != b.min || node.delay != b.max) {
      g.set_delay_bounds(n, b.min, b.max);
      ++changed;
    }
  }
  return changed;
}

std::string DelayModel::describe() const {
  if (is_exact()) return "exact";
  std::string out = "table";
  out += "(bits=" + std::to_string(bit_width_);
  out += ",fo>" + std::to_string(fanout_threshold_) + ")";
  return out;
}

}  // namespace lwm::cdfg
