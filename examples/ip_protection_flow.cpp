// ip_protection_flow — the realistic designer workflow from the paper's
// Fig. 1, including the adversarial aftermath:
//
//   1. a vendor watermarks a reusable DSP core with several *local*
//      watermarks and synthesizes it;
//   2. the core ships as a stripped specification + schedule (serialized
//      to the text interchange format, as it would be versioned);
//   3. a counterfeiter cuts half the core out and embeds it in their own
//      larger system;
//   4. the vendor proves authorship from the cut-and-embedded suspect
//      using only the archived records and signature.
#include <cstdio>
#include <sstream>

#include "cdfg/serialize.h"
#include "cdfg/subgraph.h"
#include "dfglib/synth.h"
#include "sched/list_sched.h"
#include "wm/detector.h"
#include "wm/pc.h"
#include "wm/sched_constraints.h"

int main() {
  using namespace lwm;

  // ---- 1. vendor side -----------------------------------------------------
  cdfg::Graph core = dfglib::make_dsp_design("fir_accelerator", 20, 400, 2024);
  const crypto::Signature vendor("acme-dsp", "acme-master-signing-key");

  wm::SchedWmOptions opts;
  opts.domain.tau = 5;
  opts.k = 3;
  opts.epsilon = 0.3;
  const auto marks = wm::embed_local_watermarks(core, vendor, 8, opts);
  std::vector<wm::SchedRecord> records;
  for (const auto& m : marks) records.push_back(wm::SchedRecord::from(m, core));
  std::printf("[vendor] embedded %zu local watermarks\n", marks.size());

  const sched::Schedule schedule = sched::list_schedule(core);
  core.strip_temporal_edges();
  const wm::PcEstimate pc = wm::sched_pc_window_model(core, marks);
  std::printf("[vendor] proof of authorship: 1 - 10^%.1f\n", pc.log10_pc);

  // ---- 2. shipping --------------------------------------------------------
  std::ostringstream shipped_text;
  cdfg::write_text(core, shipped_text);
  std::printf("[vendor] shipped spec: %zu bytes of text\n",
              shipped_text.str().size());

  // ---- 3. counterfeiter side ----------------------------------------------
  // Re-import (the thief reverse-engineered the netlist), cut out the
  // second half of the dataflow, and splice it into their own system.
  const cdfg::Graph reimported = cdfg::from_text(shipped_text.str());
  std::vector<cdfg::NodeId> half;
  const auto ids = reimported.node_ids();
  for (std::size_t i = ids.size() / 2; i < ids.size(); ++i) {
    half.push_back(ids[i]);
  }
  const cdfg::Partition stolen = cdfg::extract_partition(reimported, half);

  cdfg::Graph pirate_system =
      dfglib::make_dsp_design("pirate_system", 24, 700, 666);
  const cdfg::NodeMap splice =
      cdfg::embed_graph(pirate_system, stolen.graph, "ip_");
  std::printf("[thief ] cut %zu ops, embedded into a %zu-op system\n",
              stolen.graph.operation_count(), pirate_system.operation_count());

  // The thief reuses the stolen implementation's schedule (rebuilding it
  // would mean redoing the design work — the cost the paper argues about).
  sched::Schedule pirate_sched = sched::list_schedule(pirate_system);
  for (const cdfg::NodeId n : reimported.node_ids()) {
    const cdfg::NodeId cut_node = stolen.map.at(n);
    if (!cut_node.valid()) continue;
    const cdfg::NodeId host_node = splice.at(cut_node);
    const cdfg::NodeId orig = core.find(reimported.node(n).name);
    if (host_node.valid() && orig.valid() && schedule.is_scheduled(orig)) {
      pirate_sched.set_start(host_node, schedule.start_of(orig) + 5);
    }
  }

  // ---- 4. dispute ----------------------------------------------------------
  int found = 0;
  for (const auto& rec : records) {
    if (wm::detect_sched_watermark(pirate_system, pirate_sched, vendor, rec)
            .detected()) {
      ++found;
    }
  }
  std::printf("[vendor] detected %d/%zu local watermarks inside the "
              "pirate system\n", found, records.size());
  std::printf("[vendor] %s\n",
              found > 0 ? "authorship established on the embedded partition"
                        : "no watermark survived this cut");
  // Half the core was discarded, so marks rooted there are gone — but the
  // point of *local* watermarks is that the survivors are enough.
  return found > 0 ? 0 : 1;
}
