// records_io.h — persistence for watermark records.
//
// The designer's records are the other half of the proof of authorship
// (the first half is the secret signature): they must survive years
// between embedding and a dispute.  This module defines a line-oriented
// text archive for scheduling and register records, mirroring the CDFG
// interchange format:
//
//   lwm-records v1
//   sched tau=<int> keep=<num>/<den> pairs=<n>
//   pos <src> <dst>           (n lines)
//   ops <id> <id> ...         (structural fingerprint)
//   reg tau=<int> keep=<num>/<den> m=<int> pairs=<n>
//   ...
//
// Round-trips exactly; parsing errors carry line numbers.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "io/parse_result.h"
#include "wm/detector.h"
#include "wm/reg_constraints.h"

namespace lwm::wm {

/// A designer's archive: every record for one protected design.
struct RecordArchive {
  std::vector<SchedRecord> sched;
  std::vector<RegRecord> reg;
};

void write_records(const RecordArchive& archive, std::ostream& os);
[[nodiscard]] std::string to_text(const RecordArchive& archive);

/// Non-throwing parse core: malformed fields (non-numeric tau, empty
/// keep denominator, keep_den == 0, out-of-range values), bad structure,
/// and trailing garbage all come back as a located Diagnostic.
[[nodiscard]] io::ParseResult<RecordArchive> parse_records(
    std::string_view text, std::string_view source_name = "<records>");

/// Throws io::ParseError with a line number on malformed input.
[[nodiscard]] RecordArchive read_records(std::istream& is);
[[nodiscard]] RecordArchive records_from_text(const std::string& text);

}  // namespace lwm::wm
