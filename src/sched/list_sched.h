// list_sched.h — resource-constrained list scheduling.
//
// Classic critical-path list scheduling: at each control step, ready
// operations compete for the available functional units in priority
// order (longest path to sink first, then lower ALAP, then NodeId for
// determinism).  Used both as the "off-the-shelf design tool" of the
// watermark protocol (it happily honors temporal edges) and as the basis
// of the VLIW cycle model for the Table I overhead measurements.
#pragma once

#include "cdfg/analysis.h"
#include "cdfg/graph.h"
#include "sched/resources.h"
#include "sched/schedule.h"

namespace lwm::sched {

struct ListScheduleOptions {
  ResourceSet resources = ResourceSet::unlimited();
  /// Which edges constrain the schedule.  EdgeFilter::all() schedules a
  /// watermarked specification; EdgeFilter::specification() the original.
  cdfg::EdgeFilter filter = cdfg::EdgeFilter::all();
  /// Pipelined functional units: a multi-cycle operation occupies its
  /// unit only during the issue cycle (initiation interval 1), so a
  /// single pipelined multiplier accepts a new multiply every step.
  /// Dependences still wait the full latency.
  bool pipelined_units = false;
};

/// Schedules every executable node of `g`.  Always succeeds (list
/// scheduling with >=1 unit per limited class cannot deadlock on an
/// acyclic graph).  Throws std::invalid_argument if a limited class has
/// zero units but the graph contains an operation of that class.
[[nodiscard]] Schedule list_schedule(const cdfg::Graph& g,
                                     const ListScheduleOptions& opts = {});

}  // namespace lwm::sched
