# Empty compiler generated dependencies file for lwm_tool.
# This may be replaced when dependencies are built.
