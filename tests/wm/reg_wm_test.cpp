#include "wm/reg_constraints.h"

#include <gtest/gtest.h>

#include "dfglib/synth.h"
#include "sched/list_sched.h"

namespace lwm::wm {
namespace {

using cdfg::Graph;
using cdfg::NodeId;

crypto::Signature alice() { return {"alice", "alice-design-key-2001"}; }
crypto::Signature eve() { return {"eve", "unrelated-key"}; }

struct Fixture {
  Graph g;
  sched::Schedule s;
  std::vector<regbind::Lifetime> lifetimes;
};

Fixture make_fixture(std::uint64_t seed = 81) {
  Fixture f{lwm::dfglib::make_dsp_design("reg_wm", 14, 160, seed), {}, {}};
  f.s = sched::list_schedule(f.g);
  f.lifetimes = regbind::compute_lifetimes(f.g, f.s);
  return f;
}

RegWmOptions reg_options() {
  RegWmOptions opts;
  opts.domain.tau = 6;
  opts.m = 4;
  opts.min_pairs = 3;  // weak marks false-positive on regular designs
  return opts;
}

TEST(RegWmTest, PlansCompatiblePairs) {
  const Fixture f = make_fixture();
  const auto marks =
      plan_reg_watermarks(f.g, f.lifetimes, alice(), 3, reg_options());
  ASSERT_FALSE(marks.empty());
  // Every constrained pair is genuinely compatible.
  std::unordered_map<NodeId, const regbind::Lifetime*> lt;
  for (const auto& l : f.lifetimes) lt[l.producer] = &l;
  for (const auto& wm : marks) {
    for (const auto& c : wm.constraints) {
      ASSERT_TRUE(lt.count(c.u) != 0);
      ASSERT_TRUE(lt.count(c.v) != 0);
      EXPECT_FALSE(lt.at(c.u)->overlaps(*lt.at(c.v)));
      EXPECT_EQ(wm.subtree[static_cast<std::size_t>(c.u_pos)], c.u);
      EXPECT_EQ(wm.subtree[static_cast<std::size_t>(c.v_pos)], c.v);
    }
  }
}

TEST(RegWmTest, DeterministicPerSignature) {
  const Fixture f = make_fixture();
  const auto a = plan_reg_watermarks(f.g, f.lifetimes, alice(), 2, reg_options());
  const auto b = plan_reg_watermarks(f.g, f.lifetimes, alice(), 2, reg_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].root, b[i].root);
    ASSERT_EQ(a[i].constraints.size(), b[i].constraints.size());
    for (std::size_t j = 0; j < a[i].constraints.size(); ++j) {
      EXPECT_EQ(a[i].constraints[j].u, b[i].constraints[j].u);
      EXPECT_EQ(a[i].constraints[j].v, b[i].constraints[j].v);
    }
  }
}

TEST(RegWmTest, ConstrainedBindingStaysLegal) {
  const Fixture f = make_fixture();
  const auto marks =
      plan_reg_watermarks(f.g, f.lifetimes, alice(), 3, reg_options());
  ASSERT_FALSE(marks.empty());
  const auto cons = to_binding_constraints(marks);
  const auto binding = regbind::left_edge_binding(f.lifetimes, cons);
  ASSERT_TRUE(binding.has_value());
  EXPECT_TRUE(regbind::verify_binding(f.lifetimes, *binding, cons).ok);
}

TEST(RegWmTest, RegisterOverheadIsBounded) {
  const Fixture f = make_fixture();
  const auto free_binding = regbind::left_edge_binding(f.lifetimes);
  ASSERT_TRUE(free_binding.has_value());
  const auto marks =
      plan_reg_watermarks(f.g, f.lifetimes, alice(), 4, reg_options());
  const auto marked_binding = regbind::left_edge_binding(
      f.lifetimes, to_binding_constraints(marks));
  ASSERT_TRUE(marked_binding.has_value());
  EXPECT_GE(marked_binding->register_count, free_binding->register_count)
      << "forced sharing cannot beat the unconstrained optimum";
  EXPECT_LE(marked_binding->register_count, free_binding->register_count + 4)
      << "a handful of share pairs should cost at most a few registers";
}

TEST(RegWmTest, DetectionRoundTrip) {
  const Fixture f = make_fixture();
  const auto marks =
      plan_reg_watermarks(f.g, f.lifetimes, alice(), 3, reg_options());
  ASSERT_FALSE(marks.empty());
  const auto binding = regbind::left_edge_binding(
      f.lifetimes, to_binding_constraints(marks));
  ASSERT_TRUE(binding.has_value());

  for (const auto& wm : marks) {
    const RegRecord rec = RegRecord::from(wm, f.g);
    const RegDetectionReport report =
        detect_reg_watermark(f.g, f.lifetimes, *binding, alice(), rec);
    EXPECT_TRUE(report.detected()) << "root " << f.g.node(wm.root).name;
  }
}

TEST(RegWmTest, ForeignSignatureRejected) {
  const Fixture f = make_fixture();
  const auto marks =
      plan_reg_watermarks(f.g, f.lifetimes, alice(), 3, reg_options());
  ASSERT_FALSE(marks.empty());
  const auto binding = regbind::left_edge_binding(
      f.lifetimes, to_binding_constraints(marks));
  ASSERT_TRUE(binding.has_value());
  int found = 0;
  for (const auto& wm : marks) {
    const RegRecord rec = RegRecord::from(wm, f.g);
    found += detect_reg_watermark(f.g, f.lifetimes, *binding, eve(), rec).detected();
  }
  EXPECT_EQ(found, 0);
}

TEST(RegWmTest, UnwatermarkedBindingFailsDetection) {
  const Fixture f = make_fixture();
  const auto marks =
      plan_reg_watermarks(f.g, f.lifetimes, alice(), 3, reg_options());
  ASSERT_FALSE(marks.empty());
  const auto free_binding = regbind::left_edge_binding(f.lifetimes);
  ASSERT_TRUE(free_binding.has_value());
  int found = 0;
  for (const auto& wm : marks) {
    const RegRecord rec = RegRecord::from(wm, f.g);
    found += detect_reg_watermark(f.g, f.lifetimes, *free_binding, alice(), rec).detected();
  }
  EXPECT_LT(found, static_cast<int>(marks.size()))
      << "the free binder should not reproduce every forced pair";
}

TEST(RegWmTest, PcIsNegativeAndScalesWithPairs) {
  const Fixture f = make_fixture();
  const auto one = plan_reg_watermarks(f.g, f.lifetimes, alice(), 1, reg_options());
  const auto many = plan_reg_watermarks(f.g, f.lifetimes, alice(), 4, reg_options());
  ASSERT_FALSE(one.empty());
  ASSERT_GT(many.size(), one.size());
  const double pc_one = log10_reg_pc(f.g, f.lifetimes, one);
  const double pc_many = log10_reg_pc(f.g, f.lifetimes, many);
  EXPECT_LT(pc_one, 0.0);
  EXPECT_LT(pc_many, pc_one);
}

TEST(RegWmTest, BadParametersThrow) {
  const Fixture f = make_fixture();
  RegWmOptions opts = reg_options();
  opts.m = 0;
  crypto::Bitstream roots = alice().stream("roots");
  const NodeId root = pick_root(f.g, roots);
  EXPECT_THROW((void)plan_reg_watermark(f.g, f.lifetimes, root, alice(), opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace lwm::wm
