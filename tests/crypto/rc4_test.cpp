#include "crypto/rc4.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace lwm::crypto {
namespace {

std::vector<std::uint8_t> bytes(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string hex(const std::vector<std::uint8_t>& v) {
  static const char* kDigits = "0123456789ABCDEF";
  std::string out;
  for (const std::uint8_t b : v) {
    out += kDigits[b >> 4];
    out += kDigits[b & 0xF];
  }
  return out;
}

// Classic published RC4 test vectors (key / plaintext / ciphertext).
struct Vector {
  const char* key;
  const char* plaintext;
  const char* cipher_hex;
};

class Rc4KnownAnswerTest : public ::testing::TestWithParam<Vector> {};

TEST_P(Rc4KnownAnswerTest, EncryptMatchesPublishedVector) {
  const Vector& v = GetParam();
  Rc4 rc4(bytes(v.key));
  std::vector<std::uint8_t> data = bytes(v.plaintext);
  rc4.crypt(data);
  EXPECT_EQ(hex(data), v.cipher_hex);
}

TEST_P(Rc4KnownAnswerTest, DecryptIsInverse) {
  const Vector& v = GetParam();
  std::vector<std::uint8_t> data = bytes(v.plaintext);
  Rc4 enc(bytes(v.key));
  enc.crypt(data);
  Rc4 dec(bytes(v.key));
  dec.crypt(data);
  EXPECT_EQ(data, bytes(v.plaintext));
}

INSTANTIATE_TEST_SUITE_P(
    PublishedVectors, Rc4KnownAnswerTest,
    ::testing::Values(Vector{"Key", "Plaintext", "BBF316E8D940AF0AD3"},
                      Vector{"Wiki", "pedia", "1021BF0420"},
                      Vector{"Secret", "Attack at dawn",
                             "45A01F645FC35B383552544B9BF5"}));

TEST(Rc4Test, KeystreamForKeyKey) {
  Rc4 rc4(bytes("Key"));
  EXPECT_EQ(hex(rc4.keystream(10)), "EB9F7781B734CA72A719");
}

TEST(Rc4Test, SkipAdvancesKeystream) {
  Rc4 a(bytes("Key"));
  Rc4 b(bytes("Key"));
  a.skip(5);
  const auto rest = b.keystream(10);
  const auto tail = a.keystream(5);
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(), rest.begin() + 5));
}

TEST(Rc4Test, KeyLimitsEnforced) {
  EXPECT_THROW(Rc4(bytes("")), std::invalid_argument);
  EXPECT_NO_THROW(Rc4(std::vector<std::uint8_t>(256, 0x42)));
  EXPECT_THROW(Rc4(std::vector<std::uint8_t>(257, 0x42)), std::invalid_argument);
}

TEST(Rc4Test, DifferentKeysDiverge) {
  Rc4 a(bytes("KeyA"));
  Rc4 b(bytes("KeyB"));
  EXPECT_NE(a.keystream(16), b.keystream(16));
}

}  // namespace
}  // namespace lwm::crypto
