// AVX-512 refill kernel.  This TU is compiled with -mavx512f -mavx512dq
// -ffp-contract=off (and only this TU) and is entered solely through
// select_refill_fn's cpuid check.
//
// Same structure and bit-identity argument as the AVX2 kernel (see
// fds_kernels_avx2.cpp), with eight t-lanes instead of four: two passes
// (self term into out[], then one neighbor term at a time), uniform
// maskless segments wherever every lane agrees, per-s mask blends in the
// (≤ 7-step) transition zones, and an all-infeasible block fast path.
// AVX-512's native __mmask8 compare/blend makes the transition zones
// cheaper than AVX2's integer-compare + blendv dance, and the masked
// load/store handles partial blocks without scalar spills.  Products are
// explicit _mm512_mul_pd/_mm512_add_pd — never FMA — so each lane
// reproduces the scalar kernel's exact double sequence.
#include "sched/fds_kernels.h"

#if defined(LWM_SIMD_AVX512)

#include <immintrin.h>

#include <cstdint>

namespace lwm::sched::fds {

namespace {

inline __m512d madd(__m512d acc, double scalar, __m512d q) {
  return _mm512_add_pd(acc, _mm512_mul_pd(_mm512_set1_pd(scalar), q));
}

}  // namespace

void refill_force_avx512(const double* srow, int lo, int hi, int delay,
                         int latency, const double* inv_len,
                         const HotNb* hot, std::size_t nhot, double* out) {
  const double p_old = inv_len[hi - lo + 1];
  const __m512d v_d_at = _mm512_set1_pd(1.0 - p_old);
  const __m512d v_d_off = _mm512_set1_pd(0.0 - p_old);
  const __m512d v_1e9 = _mm512_set1_pd(1e9);
  const __m512i iota =
      _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);  // lane j holds j

  // ---- Pass 1: self term into out[] ------------------------------------
  for (int t0 = lo; t0 <= hi; t0 += 8) {
    const int lanes = hi - t0 + 1 < 8 ? hi - t0 + 1 : 8;
    const __mmask8 kstore =
        static_cast<__mmask8>((1u << lanes) - 1u);  // lanes == 8 -> 0xff
    __m512d acc = _mm512_setzero_pd();
    if (delay == 1) {
      // Lanes only disagree for s in [t0, t0+7] (delta is d_at on the
      // lane whose t equals s); outside that zone every lane uses d_off.
      int s = lo;
      for (; s < t0; ++s) acc = madd(acc, srow[s], v_d_off);
      const int tend = t0 + 7 < hi ? t0 + 7 : hi;
      for (; s <= tend; ++s) {
        const __mmask8 at = static_cast<__mmask8>(1u << (s - t0));
        acc = madd(acc, srow[s], _mm512_mask_blend_pd(at, v_d_off, v_d_at));
      }
      for (; s <= hi; ++s) acc = madd(acc, srow[s], v_d_off);
    } else {
      const __m512i vt = _mm512_add_epi64(_mm512_set1_epi64(t0), iota);
      for (int s = lo; s <= hi; ++s) {
        const __mmask8 at =
            _mm512_cmpeq_epi64_mask(_mm512_set1_epi64(s), vt);
        const __m512d delta = _mm512_mask_blend_pd(at, v_d_off, v_d_at);
        for (int d = 0; d < delay; ++d) {
          acc = madd(acc, srow[static_cast<std::size_t>(s + d)], delta);
        }
      }
    }
    _mm512_mask_storeu_pd(out + (t0 - lo), kstore, acc);
  }

  // ---- Pass 2: one neighbor term at a time into out[] -------------------
  for (std::size_t i = 0; i < nhot; ++i) {
    const HotNb& h = hot[i];
    const double q_out = 0.0 - h.p_old;
    const __m512d vqout = _mm512_set1_pd(q_out);

    for (int t0 = lo; t0 <= hi; t0 += 8) {
      const int lanes = hi - t0 + 1 < 8 ? hi - t0 + 1 : 8;
      const __mmask8 kstore = static_cast<__mmask8>((1u << lanes) - 1u);
      double* ob = out + (t0 - lo);
      const __m512d prev = _mm512_maskz_loadu_pd(kstore, ob);

      // All-infeasible block: the scalar kernel adds exactly 1e9 per
      // lane and never touches the dg row.  Feasibility is monotone in
      // t (pred: t - h.delay >= mlo; succ: t + delay <= mhi), so one
      // bound check covers the whole block.
      const bool all_inf = h.pred ? (t0 + 7 < h.mlo + h.delay)
                                  : (t0 > h.mhi - delay);
      if (all_inf) {
        _mm512_mask_storeu_pd(ob, kstore, _mm512_add_pd(prev, v_1e9));
        continue;
      }

      // Per-lane clipped bounds + q_in, set up in scalar code.
      // Infeasible lanes get q_in := q_out — their partial is replaced
      // by 1e9 at the end, and matching q_out keeps the maskless
      // segments lane-consistent.
      alignas(64) std::int64_t nlo[8], nhi[8];
      alignas(64) double qin[8];
      __mmask8 kinf = 0;
      for (int j = 0; j < 8; ++j) {
        const int t = t0 + j;
        const int new_lo =
            h.pred ? h.mlo : (t + delay > h.mlo ? t + delay : h.mlo);
        const int new_hi =
            h.pred ? (t - h.delay < h.mhi ? t - h.delay : h.mhi) : h.mhi;
        nlo[j] = new_lo;
        nhi[j] = new_hi;
        if (new_lo <= new_hi) {
          qin[j] = inv_len[new_hi - new_lo + 1] - h.p_old;
        } else {
          qin[j] = q_out;
          kinf |= static_cast<__mmask8>(1u << j);
        }
      }
      const __m512i vnlo = _mm512_load_si512(nlo);
      const __m512i vnhi = _mm512_load_si512(nhi);
      const __m512d vqin = _mm512_load_pd(qin);

      __m512d facc = _mm512_setzero_pd();
      if (h.delay == 1) {
        if (h.pred) {
          // In-range is [mlo, nhi_j], nhi monotone nondecreasing across
          // lanes; lane 7 is feasible (all-infeasible handled above).
          int jf = 0;
          while (nhi[jf] < h.mlo) ++jf;  // terminates: lane 7 feasible
          const int min_feas = static_cast<int>(nhi[jf]);
          const int max_all = static_cast<int>(nhi[7]);
          int s = h.mlo;
          const int up_in = min_feas < h.mhi ? min_feas : h.mhi;
          for (; s <= up_in; ++s) facc = madd(facc, h.row[s], vqin);
          const int up_mix = max_all < h.mhi ? max_all : h.mhi;
          for (; s <= up_mix; ++s) {
            const __mmask8 kout =
                _mm512_cmpgt_epi64_mask(_mm512_set1_epi64(s), vnhi);
            facc = madd(facc, h.row[s],
                        _mm512_mask_blend_pd(kout, vqin, vqout));
          }
          for (; s <= h.mhi; ++s) facc = madd(facc, h.row[s], vqout);
        } else {
          // In-range is [nlo_j, mhi], nlo monotone nondecreasing across
          // lanes; lane 0 is feasible.
          int jl = 7;
          while (nlo[jl] > h.mhi) --jl;  // terminates: lane 0 feasible
          const int min_all = static_cast<int>(nlo[0]);
          const int max_feas = static_cast<int>(nlo[jl]);
          int s = h.mlo;
          const int up_out = min_all - 1 < h.mhi ? min_all - 1 : h.mhi;
          for (; s <= up_out; ++s) facc = madd(facc, h.row[s], vqout);
          const int up_mix = max_feas - 1 < h.mhi ? max_feas - 1 : h.mhi;
          for (; s <= up_mix; ++s) {
            const __mmask8 kout =
                _mm512_cmpgt_epi64_mask(vnlo, _mm512_set1_epi64(s));
            facc = madd(facc, h.row[s],
                        _mm512_mask_blend_pd(kout, vqin, vqout));
          }
          for (; s <= h.mhi; ++s) facc = madd(facc, h.row[s], vqin);
        }
      } else {
        for (int s = h.mlo; s <= h.mhi; ++s) {
          const __m512i vs = _mm512_set1_epi64(s);
          const __mmask8 kout = static_cast<__mmask8>(
              _mm512_cmpgt_epi64_mask(vnlo, vs) |    // s < new_lo
              _mm512_cmpgt_epi64_mask(vs, vnhi));    // s > new_hi
          const __m512d q = _mm512_mask_blend_pd(kout, vqin, vqout);
          for (int d = 0; d < h.delay; ++d) {
            facc = madd(facc, h.row[static_cast<std::size_t>(s + d)], q);
          }
        }
      }

      // Infeasible lanes contribute exactly 1e9 in place of their
      // partial, matching the scalar early-continue.
      const __m512d term =
          kinf != 0 ? _mm512_mask_blend_pd(kinf, facc, v_1e9) : facc;
      _mm512_mask_storeu_pd(ob, kstore, _mm512_add_pd(prev, term));
    }
  }
  (void)latency;
}

}  // namespace lwm::sched::fds

#endif  // LWM_SIMD_AVX512
