#include "dfglib/synth.h"

#include <random>
#include <stdexcept>
#include <vector>

#include "cdfg/analysis.h"
#include "cdfg/validate.h"

namespace lwm::dfglib {

using cdfg::Graph;
using cdfg::NodeId;
using cdfg::OpKind;

Graph make_dsp_design(const std::string& name, int critical_path,
                      int operations, std::uint64_t seed) {
  // Guard the spine math below: spine_len = min(operations, critical_path)
  // is the divisor of `critical_path / spine_len`, so either parameter at
  // zero (or below) would be a division by zero, not just a bad design.
  if (critical_path < 1 || operations < 1) {
    throw std::invalid_argument(
        "make_dsp_design('" + name + "'): need critical_path >= 1 and "
        "operations >= 1, got critical_path=" + std::to_string(critical_path) +
        ", operations=" + std::to_string(operations));
  }
  std::mt19937_64 rng(seed);
  Graph g(name);

  // A small pool of primary inputs shared by the whole design.
  std::vector<NodeId> inputs;
  const int n_inputs = 4;
  for (int i = 0; i < n_inputs; ++i) {
    inputs.push_back(g.add_node(OpKind::kInput, "x" + std::to_string(i)));
  }
  auto any_input = [&] { return inputs[rng() % inputs.size()]; };

  // Spine: serial accumulation chain carrying the critical path.
  const int spine_len = std::min(operations, critical_path);
  const int base_delay = critical_path / spine_len;
  int remainder = critical_path % spine_len;  // spread +1 over `remainder` ops

  std::vector<NodeId> spine;
  std::vector<int> spine_start;  // start step of each spine op
  int t = 0;
  for (int i = 0; i < spine_len; ++i) {
    int delay = base_delay;
    if (remainder > 0) {
      ++delay;
      --remainder;
    }
    const OpKind kind = (i % 4 == 3) ? OpKind::kSub : OpKind::kAdd;
    const NodeId n = g.add_node(kind, "spine" + std::to_string(i), delay);
    if (i == 0) {
      g.add_edge(any_input(), n);
      g.add_edge(any_input(), n);
    } else {
      g.add_edge(spine[static_cast<std::size_t>(i - 1)], n);
      g.add_edge(any_input(), n);
    }
    spine.push_back(n);
    spine_start.push_back(t);
    t += delay;
  }
  g.add_edge(spine.back(),
             g.add_node(OpKind::kOutput, "y"));

  // Feeders: parallel taps that raise the op count without stretching the
  // critical path.  Where the spine is deep enough, taps come as
  // multiply-accumulate pairs (mul feeding add feeding the spine) — the
  // off-critical composite structure template matching feeds on; the
  // rest are single ops.
  std::vector<std::size_t> depth1;  // spine positions accepting 1-deep taps
  std::vector<std::size_t> depth2;  // ... 2-deep tap chains
  for (std::size_t i = 0; i < spine.size(); ++i) {
    if (spine_start[i] >= 1) depth1.push_back(i);
    if (spine_start[i] >= 2) depth2.push_back(i);
  }
  // Deepest tap chain each spine position can absorb without stretching
  // the critical path.
  auto positions_with_depth = [&](int depth) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < spine.size(); ++i) {
      if (spine_start[i] >= depth) out.push_back(i);
    }
    return out;
  };
  int remaining = operations - spine_len;
  int f = 0;
  while (remaining > 0) {
    const int want = 2 + static_cast<int>(rng() % 5);  // chain length 2..6
    const int len = std::min(want, remaining);
    const std::vector<std::size_t> legal =
        len >= 2 ? positions_with_depth(len) : std::vector<std::size_t>{};
    if (len >= 3 && !legal.empty() && rng() % 3 != 0) {
      // Tap chain: mul -> add -> ... -> add -> spine.  Chains of adds
      // admit *overlapping* composite coverings (mac vs add2 at every
      // joint), so enforcing one matching mid-chain shifts the pairing
      // parity of the rest — the covering-disruption effect template-
      // matching watermarks rely on.
      const NodeId m = g.add_node(OpKind::kMul, "tch" + std::to_string(f) + "m", 1);
      g.add_edge(any_input(), m);
      g.add_edge(any_input(), m);
      NodeId prev = m;
      for (int j = 1; j < len; ++j) {
        const NodeId a = g.add_node(
            OpKind::kAdd, "tch" + std::to_string(f) + "a" + std::to_string(j), 1);
        g.add_edge(prev, a);
        g.add_edge(any_input(), a);
        prev = a;
      }
      g.add_edge(prev, spine[legal[rng() % legal.size()]]);
      remaining -= len;
    } else if (remaining >= 2 && !depth2.empty() && rng() % 2 == 0) {
      // MAC pair: tapM -> tapA -> spine.
      const NodeId m = g.add_node(OpKind::kMul, "tapm" + std::to_string(f), 1);
      g.add_edge(any_input(), m);
      g.add_edge(any_input(), m);
      const NodeId a = g.add_node(OpKind::kAdd, "tapa" + std::to_string(f), 1);
      g.add_edge(m, a);
      g.add_edge(any_input(), a);
      g.add_edge(a, spine[depth2[rng() % depth2.size()]]);
      remaining -= 2;
    } else {
      const OpKind kind = (f % 3 == 0)   ? OpKind::kMul
                          : (f % 3 == 1) ? OpKind::kShift
                                         : OpKind::kAdd;
      const NodeId n = g.add_node(kind, "tap" + std::to_string(f), 1);
      g.add_edge(any_input(), n);
      if (kind != OpKind::kShift) g.add_edge(any_input(), n);
      if (depth1.empty()) {
        g.add_edge(n, g.add_node(OpKind::kOutput, "tap_out" + std::to_string(f)));
      } else {
        g.add_edge(n, spine[depth1[rng() % depth1.size()]]);
      }
      remaining -= 1;
    }
    ++f;
  }

  cdfg::validate_or_throw(g);
  const int cp = cdfg::critical_path_length(g);
  if (cp != critical_path ||
      g.operation_count() != static_cast<std::size_t>(operations)) {
    throw std::logic_error("make_dsp_design: generator missed targets for '" +
                           name + "' (cp=" + std::to_string(cp) + ", ops=" +
                           std::to_string(g.operation_count()) + ")");
  }
  return g;
}

Graph make_layered_dag(const std::string& name, int operations, int width,
                       const OpMix& mix, std::uint64_t seed) {
  if (operations < 1 || width < 1) {
    throw std::invalid_argument("make_layered_dag: need ops >= 1, width >= 1");
  }
  std::mt19937_64 rng(seed);
  Graph g(name);

  std::vector<NodeId> inputs;
  for (int i = 0; i < 6; ++i) {
    inputs.push_back(g.add_node(OpKind::kInput, "in" + std::to_string(i)));
  }

  const int total_weight = mix.alu + mix.mul + mix.mem + mix.branch;
  if (total_weight <= 0) {
    throw std::invalid_argument("make_layered_dag: empty op mix");
  }
  auto draw_kind = [&]() -> OpKind {
    int r = static_cast<int>(rng() % static_cast<unsigned>(total_weight));
    if ((r -= mix.alu) < 0) {
      constexpr OpKind kAluKinds[] = {OpKind::kAdd, OpKind::kSub, OpKind::kAnd,
                                      OpKind::kOr,  OpKind::kXor, OpKind::kCmp,
                                      OpKind::kShift};
      return kAluKinds[rng() % std::size(kAluKinds)];
    }
    if ((r -= mix.mul) < 0) return OpKind::kMul;
    if ((r -= mix.mem) < 0) return (rng() % 4 == 0) ? OpKind::kStore : OpKind::kLoad;
    return OpKind::kBranch;
  };

  std::vector<std::vector<NodeId>> layers;
  int placed = 0;
  while (placed < operations) {
    const int w = std::min<int>(
        operations - placed,
        1 + static_cast<int>(rng() % static_cast<unsigned>(2 * width)));
    std::vector<NodeId> layer;
    for (int i = 0; i < w; ++i) {
      const OpKind kind = draw_kind();
      const NodeId n = g.add_node(kind);
      // 1-2 operands from the previous (up to) 3 layers, else inputs.
      std::vector<NodeId> pool;
      const std::size_t from =
          layers.size() > 3 ? layers.size() - 3 : static_cast<std::size_t>(0);
      for (std::size_t l = from; l < layers.size(); ++l) {
        pool.insert(pool.end(), layers[l].begin(), layers[l].end());
      }
      const int operands = (kind == OpKind::kNot || kind == OpKind::kShift ||
                            kind == OpKind::kLoad || kind == OpKind::kBranch)
                               ? 1
                               : 2;
      for (int o = 0; o < operands; ++o) {
        const NodeId src = pool.empty() || (rng() % 5 == 0)
                               ? inputs[rng() % inputs.size()]
                               : pool[rng() % pool.size()];
        g.add_edge(src, n);
      }
      layer.push_back(n);
      ++placed;
    }
    layers.push_back(std::move(layer));
  }

  // Terminate dangling values (validator: every value needs a consumer,
  // except stores and branches).
  int outs = 0;
  for (NodeId n : g.nodes()) {
    const cdfg::Node& node = g.node(n);
    if (!cdfg::is_executable(node.kind)) continue;
    if (node.kind == OpKind::kStore || node.kind == OpKind::kBranch) continue;
    if (g.fanout(n).empty()) {
      const NodeId out = g.add_node(OpKind::kOutput, "out" + std::to_string(outs++));
      g.add_edge(n, out);
    }
  }

  cdfg::validate_or_throw(g);
  return g;
}

}  // namespace lwm::dfglib
