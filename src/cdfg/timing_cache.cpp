#include "cdfg/timing_cache.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <string>

#include "obs/obs.h"

namespace lwm::cdfg {

namespace {

constexpr std::uint64_t bit_mask(std::size_t v) noexcept {
  return std::uint64_t{1} << (v % 64);
}

}  // namespace

TimingCache::TimingCache(const Graph& g, int latency, EdgeFilter filter,
                         bool with_reachability)
    : g_(&g), filter_(filter), with_reach_(with_reachability) {
  LWM_SPAN("cdfg/timing_build");
  const std::size_t cap = g.node_capacity();
  topo_ = topo_order(g, filter);
  pos_.assign(cap, -1);
  for (std::size_t i = 0; i < topo_.size(); ++i) {
    pos_[topo_[i].value] = static_cast<int>(i);
  }
  lo_.assign(cap, -1);
  hi_.assign(cap, -1);
  pinned_.assign(cap, -1);
  extra_out_.assign(cap, {});
  extra_in_.assign(cap, {});
  changed_mark_.assign(cap, false);

  // Forward longest path (ASAP) — same recurrence as compute_timing().
  int cp = 0;
  for (NodeId n : topo_) {
    int start = 0;
    for (EdgeId e : g.fanin(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed.kind)) continue;
      start = std::max(start, lo_[ed.src.value] + g.node(ed.src).delay);
    }
    lo_[n.value] = start;
    cp = std::max(cp, start + g.node(n).delay);
  }
  critical_path_ = cp;
  if (latency < 0) {
    latency = cp;
  } else if (latency < cp) {
    throw std::invalid_argument("TimingCache: latency " +
                                std::to_string(latency) +
                                " below critical path " + std::to_string(cp) +
                                " in '" + g.name() + "'");
  }
  latency_ = latency;

  // Backward longest path (ALAP).
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const NodeId n = *it;
    int latest = latency - g.node(n).delay;
    for (EdgeId e : g.fanout(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed.kind)) continue;
      latest = std::min(latest, hi_[ed.dst.value] - g.node(n).delay);
    }
    hi_[n.value] = latest;
  }

  if (with_reach_) {
    words_ = (cap + 63) / 64;
    desc_.assign(cap * words_, 0);
    // Reverse topological order: every successor's row is final before it
    // is unioned in, so one pass per node suffices.
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
      const NodeId n = *it;
      std::uint64_t* mine = desc_.data() + row(n.value);
      for (EdgeId e : g.fanout(n)) {
        const Edge& ed = g.edge(e);
        if (!filter.accepts(ed.kind)) continue;
        const std::uint64_t* theirs = desc_.data() + row(ed.dst.value);
        for (std::size_t w = 0; w < words_; ++w) mine[w] |= theirs[w];
        mine[ed.dst.value / 64] |= bit_mask(ed.dst.value);
      }
    }
  }
}

int TimingCache::compute_lo(NodeId n) const {
  int start = 0;
  for (EdgeId e : g_->fanin(n)) {
    const Edge& ed = g_->edge(e);
    if (!filter_.accepts(ed.kind)) continue;
    start = std::max(start, lo_[ed.src.value] + g_->node(ed.src).delay);
  }
  for (NodeId p : extra_in_[n.value]) {
    start = std::max(start, lo_[p.value] + g_->node(p).delay);
  }
  return start;
}

int TimingCache::compute_hi(NodeId n) const {
  const int delay = g_->node(n).delay;
  int latest = latency_ - delay;
  for (EdgeId e : g_->fanout(n)) {
    const Edge& ed = g_->edge(e);
    if (!filter_.accepts(ed.kind)) continue;
    latest = std::min(latest, hi_[ed.dst.value] - delay);
  }
  for (NodeId s : extra_out_[n.value]) {
    latest = std::min(latest, hi_[s.value] - delay);
  }
  return latest;
}

void TimingCache::note_changed(NodeId n) {
  if (!changed_mark_[n.value]) {
    changed_mark_[n.value] = true;
    changed_.push_back(n);
  }
}

// Monotone worklist: lo values only rise, so recomputing a node from its
// current predecessors and re-queueing its successors whenever the value
// moved converges to the unique fixed point in any pop order.  The heap
// pops in topological position so, absent extra edges that run against
// the stored order, each node is recomputed at most once.
void TimingCache::propagate_lo(std::vector<NodeId> seeds) {
  std::priority_queue<int, std::vector<int>, std::greater<int>> heap;
  std::vector<bool> queued(pos_.size(), false);
  const auto push = [&](NodeId n) {
    const int p = pos_[n.value];
    if (p >= 0 && !queued[n.value]) {
      queued[n.value] = true;
      heap.push(p);
    }
  };
  for (NodeId s : seeds) push(s);
  while (!heap.empty()) {
    const NodeId n = topo_[static_cast<std::size_t>(heap.top())];
    heap.pop();
    queued[n.value] = false;
    ++update_work_;
    const int nl = compute_lo(n);
    if (pinned_[n.value] >= 0) {
      // A pinned window never moves; it can only become untenable when an
      // extra edge pushed a predecessor past it.
      if (nl > pinned_[n.value]) feasible_ = false;
      continue;
    }
    if (nl <= lo_[n.value]) continue;
    lo_[n.value] = nl;
    if (nl > hi_[n.value]) feasible_ = false;
    note_changed(n);
    for (EdgeId e : g_->fanout(n)) {
      const Edge& ed = g_->edge(e);
      if (filter_.accepts(ed.kind)) push(ed.dst);
    }
    for (NodeId s : extra_out_[n.value]) push(s);
  }
}

void TimingCache::propagate_hi(std::vector<NodeId> seeds) {
  std::priority_queue<int> heap;  // reverse topological order
  std::vector<bool> queued(pos_.size(), false);
  const auto push = [&](NodeId n) {
    const int p = pos_[n.value];
    if (p >= 0 && !queued[n.value]) {
      queued[n.value] = true;
      heap.push(p);
    }
  };
  for (NodeId s : seeds) push(s);
  while (!heap.empty()) {
    const NodeId n = topo_[static_cast<std::size_t>(heap.top())];
    heap.pop();
    queued[n.value] = false;
    ++update_work_;
    const int nh = compute_hi(n);
    if (pinned_[n.value] >= 0) {
      if (nh < pinned_[n.value]) feasible_ = false;
      continue;
    }
    if (nh >= hi_[n.value]) continue;
    hi_[n.value] = nh;
    if (nh < lo_[n.value]) feasible_ = false;
    note_changed(n);
    for (EdgeId e : g_->fanin(n)) {
      const Edge& ed = g_->edge(e);
      if (filter_.accepts(ed.kind)) push(ed.src);
    }
    for (NodeId p : extra_in_[n.value]) push(p);
  }
}

void TimingCache::pin(NodeId n, int step) {
  if (pos_[n.value] < 0) throw std::out_of_range("TimingCache::pin: dead node");
  if (pinned_[n.value] >= 0) {
    throw std::logic_error("TimingCache::pin: node '" + g_->node(n).name +
                           "' already pinned");
  }
  if (step < lo_[n.value] || step > hi_[n.value]) {
    throw std::logic_error("TimingCache::pin: step " + std::to_string(step) +
                           " outside window [" + std::to_string(lo_[n.value]) +
                           ", " + std::to_string(hi_[n.value]) + "] of '" +
                           g_->node(n).name + "'");
  }
  changed_.clear();
  std::fill(changed_mark_.begin(), changed_mark_.end(), false);
#if LWM_OBS_ENABLED
  const std::uint64_t work_before = update_work_;
#endif

  const int old_lo = lo_[n.value];
  const int old_hi = hi_[n.value];
  pinned_[n.value] = step;
  lo_[n.value] = step;
  hi_[n.value] = step;
  // The consumer contract: the pinned node is always reported, even when
  // its window was already the single step (its pinned state changed).
  note_changed(n);

  if (step > old_lo) {
    std::vector<NodeId> seeds;
    for (EdgeId e : g_->fanout(n)) {
      const Edge& ed = g_->edge(e);
      if (filter_.accepts(ed.kind)) seeds.push_back(ed.dst);
    }
    for (NodeId s : extra_out_[n.value]) seeds.push_back(s);
    propagate_lo(std::move(seeds));
  }
  if (step < old_hi) {
    std::vector<NodeId> seeds;
    for (EdgeId e : g_->fanin(n)) {
      const Edge& ed = g_->edge(e);
      if (filter_.accepts(ed.kind)) seeds.push_back(ed.src);
    }
    for (NodeId p : extra_in_[n.value]) seeds.push_back(p);
    propagate_hi(std::move(seeds));
  }
#if LWM_OBS_ENABLED
  LWM_COUNT("cdfg/timing_pushes", update_work_ - work_before);
  LWM_HIST("cdfg/timing_cone", changed_.size());
#endif
}

void TimingCache::union_descendants(NodeId src, NodeId dst) {
  // New descendants flowing into src: dst itself plus dst's row.  Walk up
  // src's ancestors, stopping wherever the row is already a superset.
  std::vector<std::uint64_t> add(desc_.begin() + static_cast<std::ptrdiff_t>(row(dst.value)),
                                 desc_.begin() + static_cast<std::ptrdiff_t>(row(dst.value) + words_));
  add[dst.value / 64] |= bit_mask(dst.value);

  std::vector<NodeId> stack{src};
  while (!stack.empty()) {
    const NodeId a = stack.back();
    stack.pop_back();
    std::uint64_t* mine = desc_.data() + row(a.value);
    bool grew = false;
    for (std::size_t w = 0; w < words_; ++w) {
      const std::uint64_t next = mine[w] | add[w];
      if (next != mine[w]) {
        mine[w] = next;
        grew = true;
      }
    }
    if (!grew) continue;
    for (EdgeId e : g_->fanin(a)) {
      const Edge& ed = g_->edge(e);
      if (filter_.accepts(ed.kind)) stack.push_back(ed.src);
    }
    for (NodeId p : extra_in_[a.value]) stack.push_back(p);
  }
}

void TimingCache::add_extra_edge(NodeId src, NodeId dst) {
  if (pos_[src.value] < 0 || pos_[dst.value] < 0) {
    throw std::out_of_range("TimingCache::add_extra_edge: dead endpoint");
  }
  if (src == dst || (with_reach_ && reaches(dst, src))) {
    throw std::logic_error("TimingCache::add_extra_edge: edge '" +
                           g_->node(src).name + "' -> '" + g_->node(dst).name +
                           "' would close a cycle");
  }
  extra_out_[src.value].push_back(dst);
  extra_in_[dst.value].push_back(src);
  if (with_reach_) union_descendants(src, dst);

  changed_.clear();
  std::fill(changed_mark_.begin(), changed_mark_.end(), false);
#if LWM_OBS_ENABLED
  const std::uint64_t work_before = update_work_;
#endif
  propagate_lo({dst});
  propagate_hi({src});
#if LWM_OBS_ENABLED
  LWM_COUNT("cdfg/timing_pushes", update_work_ - work_before);
  LWM_HIST("cdfg/timing_cone", changed_.size());
#endif
}

bool TimingCache::reaches(NodeId src, NodeId dst) const {
  if (!with_reach_) {
    throw std::logic_error(
        "TimingCache::reaches: constructed without reachability");
  }
  if (pos_[src.value] < 0 || pos_[dst.value] < 0) return false;
  if (src == dst) return true;
  return (desc_[row(src.value) + dst.value / 64] & bit_mask(dst.value)) != 0;
}

}  // namespace lwm::cdfg
