file(REMOVE_RECURSE
  "liblwm_hls.a"
)
