#include "wm/sched_constraints.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <cmath>
#include <unordered_map>

#include "cdfg/analysis.h"
#include "cdfg/timing_cache.h"
#include "exec/parallel.h"
#include "obs/obs.h"
#include "sched/kpaths.h"

namespace lwm::wm {

using cdfg::EdgeKind;
using cdfg::Graph;
using cdfg::NodeId;

PlanContext PlanContext::build(const Graph& g, const SchedWmOptions& opts) {
  PlanContext ctx;
  ctx.timing = cdfg::compute_timing(g, -1, cdfg::EdgeFilter::specification());
  const std::vector<NodeId> order =
      cdfg::topo_order(g, cdfg::EdgeFilter::all());
  ctx.topo_rank.assign(g.node_capacity(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    ctx.topo_rank[order[i].value] = static_cast<std::uint32_t>(i);
  }
  if (opts.avoid_k_worst > 0) {
    ctx.on_worst_path.assign(g.node_capacity(), 0);
    for (const NodeId n : sched::k_worst_path_nodes(
             g, opts.avoid_k_worst, cdfg::EdgeFilter::specification())) {
      ctx.on_worst_path[n.value] = 1;
    }
  }
  for (const NodeId n : g.nodes()) {
    if (cdfg::is_executable(g.node(n).kind)) ctx.ops.push_back(n);
  }
  return ctx;
}

namespace {

std::optional<SchedWatermark> plan_impl(const Graph& g, NodeId root,
                                        const crypto::Signature& sig,
                                        const SchedWmOptions& opts,
                                        const PlanContext* ctx) {
  if (opts.k <= 0 || opts.epsilon <= 0.0) {
    throw std::invalid_argument("plan_sched_watermark: need k > 0 and epsilon > 0");
  }
  LWM_SPAN("wm/plan");
  const Domain domain = select_domain(g, root, sig, opts.domain);

  // Timing of the *original specification*: the filters of Fig. 2 are
  // evaluated before any constraint is added.  With a context this is
  // precomputed; per-root work stays proportional to the locality.
  std::optional<cdfg::TimingInfo> own_timing;
  if (ctx == nullptr) {
    own_timing = cdfg::compute_timing(g, -1, cdfg::EdgeFilter::specification());
  }
  const cdfg::TimingInfo& timing = ctx ? ctx->timing : *own_timing;
  const double laxity_bound = timing.critical_path * (1.0 - opts.epsilon);

  // Optional k-worst-path exclusion: under bounded delays the laxity
  // filter alone can admit a node that sits on a worst-case-critical
  // spine; mask those spines out of T' entirely.
  std::vector<char> own_worst;
  if (ctx == nullptr && opts.avoid_k_worst > 0) {
    own_worst.assign(g.node_capacity(), 0);
    for (const NodeId n : sched::k_worst_path_nodes(
             g, opts.avoid_k_worst, cdfg::EdgeFilter::specification())) {
      own_worst[n.value] = 1;
    }
  }
  const std::vector<char>& on_worst_path = ctx ? ctx->on_worst_path : own_worst;

  // T': slack-rich executable nodes of T with an overlap partner.
  std::vector<NodeId> t_prime;
  for (const NodeId n : domain.selected) {
    if (!cdfg::is_executable(g.node(n).kind)) continue;
    if (!on_worst_path.empty() && on_worst_path[n.value]) continue;
    const int lax = timing.laxity(n);
    const bool pass = opts.paper_literal_laxity
                          ? (lax > laxity_bound)
                          : (lax <= laxity_bound);
    if (pass) t_prime.push_back(n);
  }
  // Overlap requirement: every member needs a window-overlap partner
  // among the other candidates.
  std::vector<NodeId> filtered;
  for (const NodeId a : t_prime) {
    for (const NodeId b : t_prime) {
      if (a != b && timing.windows_overlap(a, b)) {
        filtered.push_back(a);
        break;
      }
    }
  }
  t_prime = std::move(filtered);

  const int tau_prime_min =
      opts.tau_prime_min > 0 ? opts.tau_prime_min : std::max(opts.k, 2);
  if (static_cast<int>(t_prime.size()) < tau_prime_min) {
    LWM_COUNT("wm/plans_rejected", 1);
    return std::nullopt;  // caller repeats subtree selection elsewhere
  }
  const int k = std::min<int>(opts.k, static_cast<int>(t_prime.size()));

  // Positions within the ordered carved subtree (detector coordinates).
  std::unordered_map<NodeId, int> position;
  for (std::size_t i = 0; i < domain.selected.size(); ++i) {
    position[domain.selected[i]] = static_cast<int>(i);
  }

  // T'': ordered selection of K nodes via the author's bitstream.
  crypto::Bitstream stream = sig.stream(SchedWmOptions::kSelectTag);
  const std::vector<std::uint32_t> pick = stream.ordered_sample(
      static_cast<std::uint32_t>(t_prime.size()), static_cast<std::uint32_t>(k));
  std::vector<NodeId> t_second;
  t_second.reserve(pick.size());
  for (const std::uint32_t idx : pick) t_second.push_back(t_prime[idx]);

  SchedWatermark wm;
  wm.root = root;
  wm.options = opts;
  wm.subtree = domain.selected;

  // Draw temporal edges: each n_i targets a later T'' member with an
  // overlapping window; adding n_i -> n_k must not close a cycle through
  // graph edges, earlier embedded watermarks, or the edges planned so
  // far.  Without a context, the TimingCache transitive closure answers
  // each cycle check with an O(V/64) bitset probe and every planned edge
  // is folded into the closure once.  With a context, the check is the
  // topo-rank guard: rank(n_i) < rank(n_k) keeps every planned edge (in
  // this locality and every concurrently planned one) consistent with
  // one fixed topological order, so the union is acyclic with no closure
  // state at all.
  std::unique_ptr<cdfg::TimingCache> closure;
  if (ctx == nullptr) {
    closure = std::make_unique<cdfg::TimingCache>(g, -1, cdfg::EdgeFilter::all(),
                                                  /*with_reachability=*/true);
  }
  auto creates_cycle = [&](NodeId from, NodeId to) {
    if (ctx != nullptr) {
      return ctx->topo_rank[from.value] >= ctx->topo_rank[to.value];
    }
    return closure->reaches(to, from);
  };

  for (std::size_t i = 0; i < t_second.size(); ++i) {
    const NodeId ni = t_second[i];
    std::vector<NodeId> partners;
    for (std::size_t j = i + 1; j < t_second.size(); ++j) {
      const NodeId nj = t_second[j];
      if (!timing.windows_overlap(ni, nj)) continue;
      if (creates_cycle(ni, nj)) continue;
      partners.push_back(nj);
    }
    if (partners.empty()) continue;  // this n_i contributes no edge
    const NodeId nk =
        partners[stream.next_uint(static_cast<std::uint32_t>(partners.size()))];
    wm.constraints.push_back(
        TemporalConstraint{ni, nk, position.at(ni), position.at(nk)});
    if (closure) closure->add_extra_edge(ni, nk);
  }
  if (static_cast<int>(wm.constraints.size()) < std::max(1, opts.min_edges)) {
    LWM_COUNT("wm/plans_rejected", 1);
    return std::nullopt;
  }
  LWM_COUNT("wm/localities_planned", 1);
  LWM_COUNT("wm/constraints_planned", wm.constraints.size());
  return wm;
}

}  // namespace

std::optional<SchedWatermark> plan_sched_watermark(const Graph& g, NodeId root,
                                                   const crypto::Signature& sig,
                                                   const SchedWmOptions& opts) {
  return plan_impl(g, root, sig, opts, nullptr);
}

std::optional<SchedWatermark> plan_sched_watermark(const Graph& g, NodeId root,
                                                   const crypto::Signature& sig,
                                                   const SchedWmOptions& opts,
                                                   const PlanContext& ctx) {
  return plan_impl(g, root, sig, opts, &ctx);
}

std::optional<SchedWatermark> embed_sched_watermark(Graph& g, NodeId root,
                                                    const crypto::Signature& sig,
                                                    const SchedWmOptions& opts) {
  std::optional<SchedWatermark> wm = plan_sched_watermark(g, root, sig, opts);
  if (!wm) return std::nullopt;
  for (const TemporalConstraint& c : wm->constraints) {
    if (!g.has_edge(c.src, c.dst, EdgeKind::kTemporal)) {
      g.add_edge(c.src, c.dst, EdgeKind::kTemporal);
    }
  }
  return wm;
}

std::vector<SchedWatermark> embed_local_watermarks(Graph& g,
                                                   const crypto::Signature& sig,
                                                   int count,
                                                   const SchedWmOptions& opts,
                                                   int max_attempts) {
  std::vector<SchedWatermark> marks;
  crypto::Bitstream roots = sig.stream("lwm/roots");
  std::vector<bool> used(g.node_capacity(), false);
  for (int attempt = 0; attempt < max_attempts &&
                        static_cast<int>(marks.size()) < count;
       ++attempt) {
    const NodeId root = pick_root(g, roots);
    if (used[root.value]) continue;
    used[root.value] = true;
    std::optional<SchedWatermark> wm = embed_sched_watermark(g, root, sig, opts);
    if (wm) marks.push_back(std::move(*wm));
  }
  return marks;
}

std::vector<SchedWatermark> embed_local_watermarks_parallel(
    Graph& g, const crypto::Signature& sig, int count,
    const SchedWmOptions& opts, exec::ThreadPool* pool, int max_attempts) {
  if (count <= 0) return {};
  const PlanContext ctx = PlanContext::build(g, opts);
  return embed_local_watermarks_parallel(g, sig, count, opts, pool, ctx,
                                         max_attempts);
}

std::vector<SchedWatermark> embed_local_watermarks_parallel(
    Graph& g, const crypto::Signature& sig, int count,
    const SchedWmOptions& opts, exec::ThreadPool* pool, const PlanContext& ctx,
    int max_attempts) {
  std::vector<SchedWatermark> marks;
  if (count <= 0) return marks;
  LWM_SPAN("wm/embed_parallel");
  if (ctx.ops.empty()) {
    throw std::invalid_argument(
        "embed_local_watermarks_parallel: graph has no operations");
  }

  // Candidate roots, drawn serially: the same "lwm/roots" stream and
  // first-hit dedupe as the serial embedder, but against the context's
  // precomputed op list instead of an O(V) pick_root scan per attempt.
  crypto::Bitstream roots = sig.stream("lwm/roots");
  std::vector<bool> used(g.node_capacity(), false);
  std::vector<NodeId> candidates;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const NodeId root =
        ctx.ops[roots.next_uint(static_cast<std::uint32_t>(ctx.ops.size()))];
    if (used[root.value]) continue;
    used[root.value] = true;
    candidates.push_back(root);
  }

  // Plan in waves: each wave maps candidate -> optional plan concurrently
  // (pure in g and ctx), then merges serially in candidate order until
  // `count` marks are accepted.  Wave boundaries depend only on `count`
  // and the candidate sequence, so records and edges are bit-identical
  // at every thread count.
  const std::size_t wave_size =
      std::max<std::size_t>(64, 2 * static_cast<std::size_t>(count));
  std::vector<std::optional<SchedWatermark>> planned;
  for (std::size_t base = 0;
       base < candidates.size() && static_cast<int>(marks.size()) < count;
       base += wave_size) {
    const std::size_t n = std::min(wave_size, candidates.size() - base);
    LWM_COUNT("wm/embed_plan_waves", 1);
    LWM_COUNT("wm/embed_plan_candidates", n);
    planned.assign(n, std::nullopt);
    exec::parallel_for(pool, n, [&](std::size_t i) {
      planned[i] =
          plan_sched_watermark(g, candidates[base + i], sig, opts, ctx);
    });
    for (std::size_t i = 0;
         i < n && static_cast<int>(marks.size()) < count; ++i) {
      if (!planned[i]) continue;
      for (const TemporalConstraint& c : planned[i]->constraints) {
        if (!g.has_edge(c.src, c.dst, EdgeKind::kTemporal)) {
          g.add_edge(c.src, c.dst, EdgeKind::kTemporal);
        }
      }
      marks.push_back(std::move(*planned[i]));
    }
  }
  return marks;
}

std::vector<SchedWatermark> embed_watermarks_until_edges(
    Graph& g, const crypto::Signature& sig, int target_edges,
    const SchedWmOptions& opts, int max_attempts) {
  std::vector<SchedWatermark> marks;
  crypto::Bitstream roots = sig.stream("lwm/roots");
  std::vector<bool> used(g.node_capacity(), false);
  int edges = 0;
  for (int attempt = 0; attempt < max_attempts && edges < target_edges;
       ++attempt) {
    const NodeId root = pick_root(g, roots);
    if (root.value < used.size() && used[root.value]) continue;
    if (root.value < used.size()) used[root.value] = true;
    std::optional<SchedWatermark> wm = embed_sched_watermark(g, root, sig, opts);
    if (wm) {
      edges += static_cast<int>(wm->constraints.size());
      marks.push_back(std::move(*wm));
    }
  }
  return marks;
}

std::vector<NodeId> materialize_with_unit_ops(
    Graph& g, const std::vector<SchedWatermark>& marks) {
  std::vector<NodeId> inserted;
  for (const SchedWatermark& wm : marks) {
    for (const TemporalConstraint& c : wm.constraints) {
      // Drop the abstract temporal edge if it is present...
      for (cdfg::EdgeId e : g.edges_of(EdgeKind::kTemporal)) {
        const cdfg::Edge& ed = g.edge(e);
        if (ed.src == c.src && ed.dst == c.dst) {
          g.remove_edge(e);
          break;
        }
      }
      // ...and realize it as src -> unit -> dst dataflow (add of a zero).
      const NodeId u = g.add_node(cdfg::OpKind::kUnit);
      g.add_edge(c.src, u, EdgeKind::kData);
      g.add_edge(u, c.dst, EdgeKind::kData);
      inserted.push_back(u);
    }
  }
  return inserted;
}

}  // namespace lwm::wm
