#include "sched/force_directed.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace lwm::sched {

using cdfg::EdgeFilter;
using cdfg::EdgeId;
using cdfg::Graph;
using cdfg::NodeId;

namespace {

/// Recomputes [asap, alap] windows honoring pinned start steps.
struct Windows {
  std::vector<int> lo, hi;
};

Windows compute_windows(const Graph& g, const std::vector<NodeId>& order,
                        const std::vector<int>& pinned, int latency,
                        EdgeFilter filter) {
  Windows w;
  w.lo.assign(g.node_capacity(), 0);
  w.hi.assign(g.node_capacity(), 0);
  for (NodeId n : order) {
    int lo = 0;
    for (EdgeId e : g.fanin(n)) {
      const cdfg::Edge& ed = g.edge(e);
      if (!filter.accepts(ed.kind)) continue;
      lo = std::max(lo, w.lo[ed.src.value] + g.node(ed.src).delay);
    }
    if (pinned[n.value] >= 0) {
      if (pinned[n.value] < lo) {
        throw std::logic_error("FDS: pinned step violates precedence");
      }
      lo = pinned[n.value];
    }
    w.lo[n.value] = lo;
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    int hi = latency - g.node(n).delay;
    for (EdgeId e : g.fanout(n)) {
      const cdfg::Edge& ed = g.edge(e);
      if (!filter.accepts(ed.kind)) continue;
      hi = std::min(hi, w.hi[ed.dst.value] - g.node(n).delay);
    }
    if (pinned[n.value] >= 0) hi = pinned[n.value];
    if (hi < w.lo[n.value]) {
      throw std::logic_error("FDS: empty window (latency too tight)");
    }
    w.hi[n.value] = hi;
  }
  return w;
}

}  // namespace

Schedule force_directed_schedule(const Graph& g, const FdsOptions& opts) {
  const cdfg::TimingInfo base = cdfg::compute_timing(g, -1, opts.filter);
  const int latency = opts.latency < 0 ? base.critical_path : opts.latency;
  if (latency < base.critical_path) {
    throw std::invalid_argument("force_directed_schedule: latency " +
                                std::to_string(opts.latency) +
                                " below critical path " +
                                std::to_string(base.critical_path));
  }

  const std::vector<NodeId> order = cdfg::topo_order(g, opts.filter);
  std::vector<int> pinned(g.node_capacity(), -1);

  std::vector<NodeId> unscheduled;
  for (NodeId n : order) {
    if (cdfg::is_executable(g.node(n).kind)) unscheduled.push_back(n);
  }

  Schedule sched(g);
  while (!unscheduled.empty()) {
    const Windows w = compute_windows(g, order, pinned, latency, opts.filter);

    // Distribution graphs per unit class: expected occupancy of each step.
    std::vector<std::vector<double>> dg(
        cdfg::kNumUnitClasses, std::vector<double>(static_cast<std::size_t>(latency), 0.0));
    auto add_probability = [&](NodeId n, double sign) {
      const cdfg::Node& node = g.node(n);
      const auto cls = static_cast<std::size_t>(cdfg::unit_class(node.kind));
      const int lo = w.lo[n.value];
      const int hi = w.hi[n.value];
      const double p = 1.0 / (hi - lo + 1);
      for (int t = lo; t <= hi; ++t) {
        for (int d = 0; d < node.delay; ++d) {
          dg[cls][static_cast<std::size_t>(t + d)] += sign * p;
        }
      }
    };
    for (NodeId n : order) {
      if (cdfg::is_executable(g.node(n).kind)) add_probability(n, +1.0);
    }

    // Self force of placing n at step t (textbook formula: sum over the
    // occupied steps of DG(s) * (new_prob(s) - old_prob(s))).
    auto self_force = [&](NodeId n, int t) {
      const cdfg::Node& node = g.node(n);
      const auto cls = static_cast<std::size_t>(cdfg::unit_class(node.kind));
      const int lo = w.lo[n.value];
      const int hi = w.hi[n.value];
      const double p_old = 1.0 / (hi - lo + 1);
      double force = 0.0;
      for (int s = lo; s <= hi; ++s) {
        for (int d = 0; d < node.delay; ++d) {
          const double p_new = (s == t) ? 1.0 : 0.0;
          force += dg[cls][static_cast<std::size_t>(s + d)] * (p_new - p_old);
        }
      }
      return force;
    };

    // Neighbor forces: pinning n at t clips each direct predecessor's
    // window to end by t - delay_p and each successor's to start at
    // t + delay_n; approximate their force change with the same formula
    // over the clipped window.
    auto clipped_force = [&](NodeId m, int new_lo, int new_hi) {
      const cdfg::Node& node = g.node(m);
      const auto cls = static_cast<std::size_t>(cdfg::unit_class(node.kind));
      const int lo = w.lo[m.value];
      const int hi = w.hi[m.value];
      new_lo = std::max(new_lo, lo);
      new_hi = std::min(new_hi, hi);
      if (new_lo > new_hi) return 1e9;  // infeasible neighbor placement
      const double p_old = 1.0 / (hi - lo + 1);
      const double p_new = 1.0 / (new_hi - new_lo + 1);
      double force = 0.0;
      for (int s = lo; s <= hi; ++s) {
        const double pn = (s >= new_lo && s <= new_hi) ? p_new : 0.0;
        for (int d = 0; d < node.delay; ++d) {
          force += dg[cls][static_cast<std::size_t>(s + d)] * (pn - p_old);
        }
      }
      return force;
    };

    NodeId best_node;
    int best_step = -1;
    double best_force = 0.0;
    bool have_best = false;
    for (NodeId n : unscheduled) {
      const cdfg::Node& node = g.node(n);
      for (int t = w.lo[n.value]; t <= w.hi[n.value]; ++t) {
        double force = self_force(n, t);
        for (EdgeId e : g.fanin(n)) {
          const cdfg::Edge& ed = g.edge(e);
          if (!opts.filter.accepts(ed.kind)) continue;
          const NodeId p = ed.src;
          if (!cdfg::is_executable(g.node(p).kind) || pinned[p.value] >= 0) continue;
          force += clipped_force(p, 0, t - g.node(p).delay);
        }
        for (EdgeId e : g.fanout(n)) {
          const cdfg::Edge& ed = g.edge(e);
          if (!opts.filter.accepts(ed.kind)) continue;
          const NodeId s = ed.dst;
          if (!cdfg::is_executable(g.node(s).kind) || pinned[s.value] >= 0) continue;
          force += clipped_force(s, t + node.delay, latency);
        }
        if (!have_best || force < best_force) {
          have_best = true;
          best_force = force;
          best_node = n;
          best_step = t;
        }
      }
    }
    pinned[best_node.value] = best_step;
    sched.set_start(best_node, best_step);
    unscheduled.erase(
        std::remove(unscheduled.begin(), unscheduled.end(), best_node),
        unscheduled.end());
  }
  return sched;
}

}  // namespace lwm::sched
