// sched_pc_poisson parity and the sched_pc_auto size dispatch.
//
// The Poisson estimator is an approximation with an exact analytic
// relationship to the window model it replaces: per temporal edge with
// order probability p, the log-factor gap is
//     0 <= -ln p - (1 - p) <= (1 - p)^2 / (2 p),
// so over a whole mark set  window <= poisson <= window + B  where
// B = sum_i (1-p_i)^2 / (2 p_i) / ln 10.  That bound is asserted on
// every design of the experiment suite (dfglib kernels + the eight
// MediaBench apps).  Against exhaustive-psi sched_pc_exact — a different
// state space (subtree schedules, not independent windows) — the
// documented tolerance is two decades: |poisson - exact| <= 2.0 on every
// design where enumeration completes (observed max gap 1.4, JPEG.c).
#include "wm/pc.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "cdfg/analysis.h"
#include "dfglib/iir4.h"
#include "dfglib/kernels.h"
#include "dfglib/mediabench.h"
#include "dfglib/synth.h"
#include "obs/obs.h"

namespace lwm::wm {
namespace {

using cdfg::Graph;

crypto::Signature alice() { return {"alice", "alice-design-key-2001"}; }

SchedWmOptions suite_options() {
  SchedWmOptions opts;
  opts.domain.tau = 6;
  opts.domain.keep_num = 1;
  opts.domain.keep_den = 1;
  opts.k = 2;
  opts.epsilon = 0.3;
  return opts;
}

std::vector<std::pair<std::string, Graph>> experiment_suite() {
  std::vector<std::pair<std::string, Graph>> suite;
  suite.emplace_back("iir4", dfglib::iir4_parallel());
  suite.emplace_back("fir16", dfglib::make_fir(16));
  suite.emplace_back("fft8", dfglib::make_fft(8));
  suite.emplace_back("biquad4", dfglib::make_biquad_cascade(4));
  for (const dfglib::MediabenchApp& app : dfglib::mediabench_table()) {
    suite.emplace_back(app.name, dfglib::make_mediabench_app(app));
  }
  return suite;
}

/// The second-order remainder bound on poisson - window (log10 decades).
double analytic_gap_bound(const Graph& g,
                          std::span<const SchedWatermark> marks) {
  const cdfg::TimingInfo timing =
      cdfg::compute_timing(g, -1, cdfg::EdgeFilter::specification());
  double bound = 0.0;
  for (const SchedWatermark& m : marks) {
    for (const TemporalConstraint& c : m.constraints) {
      const double p = edge_order_probability(timing, g, c.src, c.dst);
      if (p > 0.0) bound += (1.0 - p) * (1.0 - p) / (2.0 * p);
    }
  }
  return bound / std::log(10.0);
}

TEST(SchedPcPoissonTest, WithinAnalyticBoundOfWindowModelOnEveryDesign) {
  int covered = 0;
  for (auto& [name, g] : experiment_suite()) {
    const auto marks = embed_local_watermarks(g, alice(), 2, suite_options());
    if (marks.empty()) continue;  // fir16: a zero-laxity tap chain
    ++covered;
    g.strip_temporal_edges();
    const PcEstimate window = sched_pc_window_model(g, marks);
    const PcEstimate poisson = sched_pc_poisson(g, marks);
    EXPECT_FALSE(poisson.exact);
    EXPECT_LT(poisson.log10_pc, 0.0) << name;
    // window <= poisson <= window + B, B the second-order remainder.
    EXPECT_LE(window.log10_pc, poisson.log10_pc + 1e-12) << name;
    EXPECT_LE(poisson.log10_pc,
              window.log10_pc + analytic_gap_bound(g, marks) + 1e-12)
        << name;
  }
  EXPECT_GE(covered, 10) << "suite designs must actually carry marks";
}

TEST(SchedPcPoissonTest, WithinTwoDecadesOfExactOnEveryDesign) {
  // A tight saturation budget keeps the exhaustive counts fast; marks
  // whose psi-space is larger simply fall out of the comparison (the
  // whole reason sched_pc_auto exists).
  sched::EnumerationOptions eopts;
  eopts.limit = 100'000;
  int compared = 0;
  for (auto& [name, g] : experiment_suite()) {
    const auto marks = embed_local_watermarks(g, alice(), 2, suite_options());
    if (marks.empty()) continue;
    g.strip_temporal_edges();
    for (const SchedWatermark& m : marks) {
      const PcEstimate exact = sched_pc_exact(g, m, eopts);
      if (!exact.exact) continue;  // enumeration saturated
      ++compared;
      const SchedWatermark one[] = {m};
      const PcEstimate poisson = sched_pc_poisson(g, one);
      EXPECT_NEAR(poisson.log10_pc, exact.log10_pc, 2.0) << name;
    }
  }
  EXPECT_GE(compared, 5) << "the exact path must cover a real sample";
}

TEST(SchedPcPoissonTest, AdditiveOverMarksAndDegenerateOnImpossibleEdge) {
  Graph g = dfglib::make_dsp_design("poi_add", 12, 200, 31);
  SchedWmOptions opts;
  opts.domain.tau = 5;
  opts.k = 2;
  opts.epsilon = 0.3;
  const auto marks = embed_local_watermarks(g, alice(), 3, opts);
  ASSERT_GE(marks.size(), 2u);
  g.strip_temporal_edges();
  const double all = sched_pc_poisson(g, marks).log10_pc;
  double sum = 0.0;
  for (const SchedWatermark& m : marks) {
    const SchedWatermark one[] = {m};
    sum += sched_pc_poisson(g, one).log10_pc;
  }
  EXPECT_NEAR(all, sum, 1e-9) << "lambda sums over edges";

  // An order-impossible edge (dst strictly precedes src) has p = 0: one
  // full expected violation and a degenerate estimate.
  SchedWatermark bad = marks[0];
  bad.constraints.clear();
  const cdfg::TimingInfo t = cdfg::compute_timing(g);
  cdfg::NodeId lo, hi;
  bool found = false;
  for (const cdfg::NodeId n : g.node_ids()) {
    if (!cdfg::is_executable(g.node(n).kind)) continue;
    for (const cdfg::NodeId m2 : g.node_ids()) {
      if (!cdfg::is_executable(g.node(m2).kind)) continue;
      if (t.alap[m2.value] + g.node(m2).delay <= t.asap[n.value]) {
        lo = m2;
        hi = n;
        found = true;
        break;
      }
    }
    if (found) break;
  }
  ASSERT_TRUE(found);
  bad.constraints.push_back({hi, lo, 0, 1});  // hi must precede lo: impossible
  const SchedWatermark badset[] = {bad};
  const PcEstimate est = sched_pc_poisson(g, badset);
  EXPECT_TRUE(est.degenerate);
  EXPECT_LE(est.log10_pc, -1.0 / std::log(10.0) + 1e-12);
}

TEST(SchedPcAutoTest, DispatchesBySizeAndLogsTheBranch) {
  // Small design: under the default 2048-node threshold -> exact path.
  Graph small = dfglib::iir4_parallel();
  const auto small_marks =
      embed_local_watermarks(small, alice(), 1, suite_options());
  ASSERT_FALSE(small_marks.empty());
  small.strip_temporal_edges();

  // Mega design: over the threshold -> Poisson path.
  dfglib::MegaConfig cfg;
  cfg.name = "auto_mega";
  cfg.operations = 4000;
  cfg.width = 32;
  cfg.seed = 17;
  Graph mega = dfglib::make_mega_design(cfg);
  SchedWmOptions mopts;
  mopts.domain.tau = 4;
  mopts.k = 3;
  const auto mega_marks = embed_local_watermarks(mega, alice(), 1, mopts);
  ASSERT_FALSE(mega_marks.empty());
  mega.strip_temporal_edges();
  ASSERT_GT(mega.node_count(), SchedPcAutoOptions{}.poisson_node_threshold);

#if LWM_OBS_ENABLED
  obs::Registry::instance().reset();
#endif
  const PcEstimate small_est = sched_pc_auto(small, small_marks[0]);
  EXPECT_TRUE(small_est.exact);
  EXPECT_DOUBLE_EQ(small_est.log10_pc,
                   sched_pc_exact(small, small_marks[0]).log10_pc);

  const PcEstimate mega_est = sched_pc_auto(mega, mega_marks[0]);
  EXPECT_FALSE(mega_est.exact);
  const SchedWatermark one[] = {mega_marks[0]};
  EXPECT_DOUBLE_EQ(mega_est.log10_pc, sched_pc_poisson(mega, one).log10_pc);

  // Forcing the threshold below the small design proves the fallback
  // engages on size alone, not on some property of mega-designs.
  SchedPcAutoOptions tiny;
  tiny.poisson_node_threshold = 4;
  EXPECT_FALSE(sched_pc_auto(small, small_marks[0], tiny).exact);

#if LWM_OBS_ENABLED
  EXPECT_EQ(obs::Registry::instance().counter("wm/pc_auto_exact").total(), 1u);
  EXPECT_EQ(obs::Registry::instance().counter("wm/pc_auto_poisson").total(),
            2u);
#endif
}

}  // namespace
}  // namespace lwm::wm
