#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/parallel.h"

namespace lwm::exec {
namespace {

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(&pool, kN, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SerialFallbacksCoverAllIndices) {
  // Null pool and single-lane pool must both degrade to a plain loop.
  ThreadPool single(1);
  for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &single}) {
    std::vector<int> visits(777, 0);
    parallel_for(pool, visits.size(), [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < visits.size(); ++i) {
      ASSERT_EQ(visits[i], 1);
    }
  }
}

TEST(ThreadPoolTest, ReduceFoldsInChunkOrder) {
  // A non-commutative fold (string concatenation) exposes any reordering:
  // the parallel result must equal the serial left-to-right fold.
  ThreadPool pool(8);
  constexpr std::size_t kN = 100;
  const auto map = [](std::size_t begin, std::size_t end) {
    std::string s;
    for (std::size_t i = begin; i < end; ++i) s += std::to_string(i) + ",";
    return s;
  };
  const auto fold = [](std::string acc, std::string part) {
    return acc + part;
  };
  const std::string serial =
      parallel_reduce(nullptr, kN, std::size_t{16}, std::string(), map, fold);
  const std::string parallel =
      parallel_reduce(&pool, kN, std::size_t{16}, std::string(), map, fold);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial.substr(0, 8), "0,1,2,3,");
}

TEST(ThreadPoolTest, NestedParallelSectionsComplete) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  parallel_for(&pool, 8, [&](std::size_t) {
    parallel_for(&pool, 8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ExceptionsPropagateToTheCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(&pool, 64,
                   [&](std::size_t i) {
                     if (i == 33) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ConcurrencyClampsToAtLeastOne) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.concurrency(), 1);
  EXPECT_GE(ThreadPool::hardware_concurrency(), 1);
}

TEST(ThreadPoolTest, SubmitRunOneDrains) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  // Help until everything submitted has run (workers race us; both fine).
  while (ran.load(std::memory_order_relaxed) < 16) {
    (void)pool.run_one();
  }
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace lwm::exec
