#include "wm/attack.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace lwm::wm {

using cdfg::EdgeId;
using cdfg::Graph;
using cdfg::NodeId;

namespace {

/// Sentinel start step meaning "no scheduled consumer bounds this move
/// from above".  Any real schedule sits far below it, and it leaves
/// enough headroom below INT_MAX that clamped arithmetic against it can
/// never wrap.
constexpr int kUnboundedStep = 1 << 28;

}  // namespace

AttackCost attack_cost(long long qualified, int k, double target_log10_pc,
                       double mean_ratio) {
  if (qualified <= 0 || k <= 0 || mean_ratio <= 0.0 || mean_ratio >= 1.0) {
    throw std::invalid_argument("attack_cost: bad parameters");
  }
  AttackCost cost;
  // Max edges that may survive while P_c stays above the target:
  // survivors * log10(ratio) >= target.
  const int max_survivors = static_cast<int>(
      std::floor(target_log10_pc / std::log10(mean_ratio)));
  cost.edges_to_break = std::max(0, k - max_survivors);
  if (cost.edges_to_break == 0) return cost;

  // A random pair reordering touches 2 of the `qualified` nodes; an edge
  // breaks iff >= 1 endpoint is touched.  With node-touch probability q,
  // P(edge broken) = 1 - (1 - q)^2; solve for the required q.
  const double broken_frac =
      static_cast<double>(cost.edges_to_break) / static_cast<double>(k);
  const double q = 1.0 - std::sqrt(1.0 - broken_frac);
  cost.fraction_of_solution = q;
  cost.pairs_to_alter =
      static_cast<long long>(std::ceil(q * static_cast<double>(qualified) / 2.0));
  return cost;
}

PerturbResult perturb_schedule(const Graph& g, const sched::Schedule& s,
                               int moves, std::uint64_t seed,
                               cdfg::EdgeFilter filter) {
  PerturbResult result;
  result.schedule = s;
  std::mt19937_64 rng(seed);

  std::vector<NodeId> ops;
  for (NodeId n : g.nodes()) {
    if (cdfg::is_executable(g.node(n).kind) && s.is_scheduled(n)) {
      ops.push_back(n);
    }
  }
  if (ops.size() < 2) return result;

  // Executable-to-executable precedence (collapsing pseudo-ops is not
  // needed: pseudo-ops are unscheduled and skipped by the bounds below).
  // Bounds are computed in 64-bit without saturation: with large bounded
  // delays (d_max near the sentinel) the plain int `start + delay` could
  // wrap, and clamping the *lower* bound down to the sentinel would admit
  // moves before the producer's true finish.  If the true lower bound
  // exceeds every upper bound the move is skipped, never legalized by
  // truncation.
  auto legal_range = [&](NodeId n) -> std::pair<long long, long long> {
    long long lo = 0;
    long long hi = kUnboundedStep;
    for (EdgeId e : g.fanin(n)) {
      const cdfg::Edge& ed = g.edge(e);
      if (!filter.accepts(ed)) continue;
      const NodeId p = ed.src;
      if (!result.schedule.is_scheduled(p)) continue;
      lo = std::max(lo, static_cast<long long>(result.schedule.start_of(p)) +
                            g.node(p).delay);
    }
    for (EdgeId e : g.fanout(n)) {
      const cdfg::Edge& ed = g.edge(e);
      if (!filter.accepts(ed)) continue;
      const NodeId c = ed.dst;
      if (!result.schedule.is_scheduled(c)) continue;
      hi = std::min(hi, static_cast<long long>(
                            result.schedule.start_of(c)) -
                            g.node(n).delay);
    }
    return {lo, hi};
  };

  const int original_len = s.length(g);
  for (int m = 0; m < moves; ++m) {
    const NodeId n = ops[rng() % ops.size()];
    auto [lo, hi] = legal_range(n);
    // Keep the attack quality-preserving: never stretch the schedule.
    hi = std::min(hi,
                  static_cast<long long>(original_len) - g.node(n).delay);
    if (hi <= lo && result.schedule.start_of(n) == lo) continue;
    if (hi < lo) continue;
    const long long span = hi - lo + 1;
    const int new_start = static_cast<int>(
        lo + static_cast<long long>(rng() % static_cast<unsigned long long>(span)));
    const int old_start = result.schedule.start_of(n);
    if (new_start == old_start) continue;
    // Count order flips against every other op.
    for (const NodeId other : ops) {
      if (other == n) continue;
      const int o = result.schedule.start_of(other);
      const bool before_old = old_start < o || (old_start == o && n < other);
      const bool before_new = new_start < o || (new_start == o && n < other);
      if (before_old != before_new) ++result.pairs_reordered;
    }
    result.schedule.set_start(n, new_start);
    ++result.moves_applied;
  }
  return result;
}

std::vector<NodeId> insert_decoys(Graph& g, sched::Schedule& s, int count,
                                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<NodeId> inserted;

  for (int k = 0; k < count; ++k) {
    // Collect splittable edges fresh each round (prior splits change them).
    std::vector<cdfg::EdgeId> candidates;
    for (cdfg::EdgeId e : g.edges_of(cdfg::EdgeKind::kData)) {
      const cdfg::Edge& ed = g.edge(e);
      const cdfg::Node& src = g.node(ed.src);
      const cdfg::Node& dst = g.node(ed.dst);
      if (!cdfg::is_executable(src.kind) || !cdfg::is_executable(dst.kind)) {
        continue;
      }
      if (!s.is_scheduled(ed.src) || !s.is_scheduled(ed.dst)) continue;
      const int gap =
          s.start_of(ed.dst) - (s.start_of(ed.src) + src.delay);
      if (gap >= 1) candidates.push_back(e);
    }
    if (candidates.empty()) break;
    const cdfg::EdgeId victim = candidates[rng() % candidates.size()];
    const cdfg::Edge ed = g.edge(victim);
    g.remove_edge(victim);
    const NodeId decoy = g.add_node(cdfg::OpKind::kUnit);
    g.add_edge(ed.src, decoy, cdfg::EdgeKind::kData);
    g.add_edge(decoy, ed.dst, cdfg::EdgeKind::kData);
    s.set_start(decoy, s.start_of(ed.src) + g.node(ed.src).delay);
    inserted.push_back(decoy);
  }
  return inserted;
}

double constraints_surviving(const Graph& g, const sched::Schedule& s,
                             const SchedWatermark& wm) {
  if (wm.constraints.empty()) return 0.0;
  int ok = 0;
  for (const TemporalConstraint& c : wm.constraints) {
    if (!s.is_scheduled(c.src) || !s.is_scheduled(c.dst)) continue;
    if (s.start_of(c.src) + g.node(c.src).delay <= s.start_of(c.dst)) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(wm.constraints.size());
}

}  // namespace lwm::wm
