#include "io/text.h"

#include <charconv>

namespace lwm::io {

namespace {

constexpr bool is_blank(char c) { return c == ' ' || c == '\t'; }

template <typename T>
std::optional<T> from_chars_whole(std::string_view tok) {
  // std::from_chars already rejects leading whitespace and '+'; the
  // extra checks enforce "whole token consumed" ("3junk", "1/2") and an
  // explicit empty-token failure ("keep=3/" yields an empty den field).
  if (tok.empty()) return std::nullopt;
  T value{};
  const char* end = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(tok.data(), end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

}  // namespace

std::optional<Token> LineLexer::next() {
  while (pos_ < line_.size() && is_blank(line_[pos_])) ++pos_;
  if (pos_ >= line_.size()) return std::nullopt;
  const std::size_t start = pos_;
  while (pos_ < line_.size() && !is_blank(line_[pos_])) ++pos_;
  return Token{line_.substr(start, pos_ - start), static_cast<int>(start) + 1};
}

bool LineLexer::at_end() const {
  for (std::size_t i = pos_; i < line_.size(); ++i) {
    if (!is_blank(line_[i])) return false;
  }
  return true;
}

std::optional<int> to_int(std::string_view tok) {
  return from_chars_whole<int>(tok);
}

std::optional<std::uint32_t> to_u32(std::string_view tok) {
  // from_chars<uint32_t> accepts no '-', so "-1" fails rather than wraps.
  return from_chars_whole<std::uint32_t>(tok);
}

std::optional<double> to_double(std::string_view tok) {
  auto v = from_chars_whole<double>(tok);
  // Reject non-finite spellings ("inf", "nan"): no artifact field wants
  // them and they poison downstream arithmetic silently.
  if (v && !(*v - *v == 0.0)) return std::nullopt;
  return v;
}

}  // namespace lwm::io
