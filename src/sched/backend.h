// backend.h — the unified scheduler-backend interface.
//
// Five schedulers grew up in this repo with five ad-hoc signatures:
// list (resource-constrained heuristic), FDS (time-constrained
// heuristic), B&B (resource-constrained exact), enumerate (canonical-
// order witness of the counting machinery), and modulo (periodic, for
// marked graphs).  Benches, the watermark planners, and lwm-serve each
// hard-coded one of them.  This header puts them behind one API:
//
//     const Backend* b = find_backend("modulo");
//     if (b->caps & kCapPeriodic) { ... }
//     BackendResult r = b->run(g, req);
//
// A capability mask declares what each backend can legally consume —
// dispatchers check it instead of knowing scheduler trivia:
//
//   * kCapPeriodic — accepts marked graphs (token-carrying back-edges)
//     and returns an initiation interval; everything else is acyclic-
//     only and schedule_with() throws if handed a cyclic design.
//   * kCapBoundedDelay — constrains against d_max, so its schedules
//     stay legal under every realization of dynamically bounded delays
//     (all five qualify; the bit exists so future backends that read
//     only nominal delays are honest about it).
//   * kCapResourceConstrained / kCapTimeConstrained — which half of the
//     request (resources vs latency bound) the backend honors.
//
// Legacy contract: running "list", "fds", "bnb" or "enumerate" through
// this API is bit-identical to calling the underlying scheduler
// directly with equivalent options (pinned by tests/sched/backend_test).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cdfg/analysis.h"
#include "cdfg/graph.h"
#include "sched/resources.h"
#include "sched/schedule.h"

namespace lwm::exec {
class ThreadPool;
}  // namespace lwm::exec

namespace lwm::sched {

/// Capability bits (Backend::caps).
inline constexpr std::uint32_t kCapAcyclic = 1u << 0;   ///< schedules DAGs
inline constexpr std::uint32_t kCapPeriodic = 1u << 1;  ///< schedules marked graphs
inline constexpr std::uint32_t kCapBoundedDelay = 1u << 2;  ///< honors d_max
inline constexpr std::uint32_t kCapResourceConstrained = 1u << 3;
inline constexpr std::uint32_t kCapTimeConstrained = 1u << 4;
inline constexpr std::uint32_t kCapExact = 1u << 5;  ///< proves optimality

/// One request, superset of every backend's knobs; each backend reads
/// the fields its capabilities advertise and ignores the rest.
struct BackendRequest {
  ResourceSet resources = ResourceSet::unlimited();
  cdfg::EdgeFilter filter = cdfg::EdgeFilter::all();
  /// Latency bound for time-constrained backends; -1 = critical path.
  int latency = -1;
  bool pipelined_units = false;
  /// Exact-search effort cap (bnb); 0 = unlimited.
  std::uint64_t node_limit = 50'000'000;
  /// Periodic II search range (modulo); -1 = computed MinII / fallback.
  int min_ii = -1;
  int max_ii = -1;
  /// FDS distribution-graph drift threshold.
  double eps_dg = 0.0;
  /// Optional pool for backends that parallelize; null runs serially.
  exec::ThreadPool* pool = nullptr;
};

struct BackendResult {
  Schedule schedule;
  int latency = 0;  ///< flat makespan (one iteration for periodic)
  int ii = 0;       ///< initiation interval; 0 for acyclic backends
  bool optimal = false;  ///< meaningful only for kCapExact backends
};

/// A registered scheduler backend.  Instances are static-lifetime
/// singletons owned by the registry; hold them by pointer.
struct Backend {
  std::string_view name;
  std::uint32_t caps = 0;
  BackendResult (*run)(const cdfg::Graph& g, const BackendRequest& req) = nullptr;

  [[nodiscard]] bool can(std::uint32_t cap_bits) const noexcept {
    return (caps & cap_bits) == cap_bits;
  }
};

/// Looks a backend up by name; nullptr when unknown.
[[nodiscard]] const Backend* find_backend(std::string_view name) noexcept;

/// All registered backend names, registration order (stable).
[[nodiscard]] std::vector<std::string_view> backend_names();

/// Dispatch front door: finds the backend, checks its capability mask
/// against the design (a marked graph with token edges requires
/// kCapPeriodic when the request filter includes them), runs it.
/// Throws std::invalid_argument on an unknown name or a capability
/// mismatch — loudly, instead of letting an acyclic-only scheduler
/// silently drop loop-carried dependences.
[[nodiscard]] BackendResult schedule_with(std::string_view name,
                                          const cdfg::Graph& g,
                                          const BackendRequest& req = {});

}  // namespace lwm::sched
