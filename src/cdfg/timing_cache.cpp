#include "cdfg/timing_cache.h"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>

#include "obs/obs.h"

namespace lwm::cdfg {

namespace {

constexpr std::uint64_t bit_mask(std::size_t v) noexcept {
  return std::uint64_t{1} << (v % 64);
}

}  // namespace

TimingCache::TimingCache(const Graph& g, int latency, EdgeFilter filter,
                         bool with_reachability)
    : g_(&g), filter_(filter), with_reach_(with_reachability),
      bounded_(g.has_bounded_delays()) {
  LWM_SPAN("cdfg/timing_build");
  const std::size_t cap = g.node_capacity();
  topo_ = topo_order(g, filter);
  pos_.assign(cap, -1);
  for (std::size_t i = 0; i < topo_.size(); ++i) {
    pos_[topo_[i].value] = static_cast<int>(i);
  }
  lo_.assign(cap, -1);
  hi_.assign(cap, -1);
  pinned_.assign(cap, -1);
  extra_out_.assign(cap, {});
  extra_in_.assign(cap, {});
  changed_mark_.assign(cap, false);
  queued_.assign(cap, 0);

  // Freeze the filtered adjacency to CSR (value-indexed, per-node edge
  // insertion order preserved): two counting passes, one arena each way.
  delay_.assign(cap, 0);
  if (bounded_) delay_min_.assign(cap, 0);
  fanin_off_.assign(cap + 1, 0);
  fanout_off_.assign(cap + 1, 0);
  for (std::size_t v = 0; v < cap; ++v) {
    const NodeId n{static_cast<std::uint32_t>(v)};
    if (pos_[v] < 0) continue;  // dead: empty rows
    delay_[v] = g.node(n).delay;
    if (bounded_) delay_min_[v] = g.node(n).delay_min;
    std::uint32_t in = 0, out = 0;
    for (EdgeId e : g.fanin(n)) {
      if (filter.accepts(g.edge(e))) ++in;
    }
    for (EdgeId e : g.fanout(n)) {
      if (filter.accepts(g.edge(e))) ++out;
    }
    fanin_off_[v + 1] = in;
    fanout_off_[v + 1] = out;
  }
  for (std::size_t v = 0; v < cap; ++v) {
    fanin_off_[v + 1] += fanin_off_[v];
    fanout_off_[v + 1] += fanout_off_[v];
  }
  fanin_node_.resize(fanin_off_[cap]);
  fanin_delay_.resize(fanin_off_[cap]);
  if (bounded_) fanin_delay_min_.resize(fanin_off_[cap]);
  fanout_node_.resize(fanout_off_[cap]);
  for (std::size_t v = 0; v < cap; ++v) {
    const NodeId n{static_cast<std::uint32_t>(v)};
    if (pos_[v] < 0) continue;
    std::uint32_t in = fanin_off_[v], out = fanout_off_[v];
    for (EdgeId e : g.fanin(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed)) continue;
      fanin_node_[in] = ed.src.value;
      fanin_delay_[in] = g.node(ed.src).delay;
      if (bounded_) fanin_delay_min_[in] = g.node(ed.src).delay_min;
      ++in;
    }
    for (EdgeId e : g.fanout(n)) {
      const Edge& ed = g.edge(e);
      if (!filter.accepts(ed)) continue;
      fanout_node_[out++] = ed.dst.value;
    }
  }

  // Forward longest path (ASAP) — same recurrence as compute_timing().
  int cp = 0;
  for (NodeId n : topo_) {
    const std::size_t v = n.value;
    int start = 0;
    for (std::uint32_t i = fanin_off_[v]; i < fanin_off_[v + 1]; ++i) {
      const int cand = lo_[fanin_node_[i]] + fanin_delay_[i];
      start = std::max(start, cand);
    }
    lo_[v] = start;
    cp = std::max(cp, start + delay_[v]);
  }
  critical_path_ = cp;
  if (latency < 0) {
    latency = cp;
  } else if (latency < cp) {
    throw std::invalid_argument("TimingCache: latency " +
                                std::to_string(latency) +
                                " below critical path " + std::to_string(cp) +
                                " in '" + g.name() + "'");
  }
  latency_ = latency;

  // Backward longest path (ALAP).
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const std::size_t v = it->value;
    int latest = latency - delay_[v];
    for (std::uint32_t i = fanout_off_[v]; i < fanout_off_[v + 1]; ++i) {
      latest = std::min(latest, hi_[fanout_node_[i]] - delay_[v]);
    }
    hi_[v] = latest;
  }

  // Optimistic band: the same two passes with every delay at d_min,
  // against the same latency bound (compute_timing_bounded's contract).
  if (bounded_) {
    lo_min_.assign(cap, -1);
    hi_min_.assign(cap, -1);
    int cpm = 0;
    for (NodeId n : topo_) {
      const std::size_t v = n.value;
      int start = 0;
      for (std::uint32_t i = fanin_off_[v]; i < fanin_off_[v + 1]; ++i) {
        start = std::max(start, lo_min_[fanin_node_[i]] + fanin_delay_min_[i]);
      }
      lo_min_[v] = start;
      cpm = std::max(cpm, start + delay_min_[v]);
    }
    critical_path_min_ = cpm;
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
      const std::size_t v = it->value;
      int latest = latency - delay_min_[v];
      for (std::uint32_t i = fanout_off_[v]; i < fanout_off_[v + 1]; ++i) {
        latest = std::min(latest, hi_min_[fanout_node_[i]] - delay_min_[v]);
      }
      hi_min_[v] = latest;
    }
  }

  if (with_reach_) {
    words_ = (cap + 63) / 64;
    desc_.assign(cap * words_, 0);
    // Reverse topological order: every successor's row is final before it
    // is unioned in, so one pass per node suffices.
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
      const std::size_t v = it->value;
      std::uint64_t* mine = desc_.data() + row(v);
      for (std::uint32_t i = fanout_off_[v]; i < fanout_off_[v + 1]; ++i) {
        const std::uint32_t dst = fanout_node_[i];
        const std::uint64_t* theirs = desc_.data() + row(dst);
        for (std::size_t w = 0; w < words_; ++w) mine[w] |= theirs[w];
        mine[dst / 64] |= bit_mask(dst);
      }
    }
  }
}

TimingCache::Band TimingCache::primary_band() noexcept {
  return Band{lo_.data(), hi_.data(), fanin_delay_.data(), delay_.data(),
              /*primary=*/true};
}

TimingCache::Band TimingCache::min_band() noexcept {
  return Band{lo_min_.data(), hi_min_.data(), fanin_delay_min_.data(),
              delay_min_.data(), /*primary=*/false};
}

int TimingCache::compute_lo(NodeId n, const Band& b) const {
  const std::size_t v = n.value;
  int start = 0;
  for (std::uint32_t i = fanin_off_[v]; i < fanin_off_[v + 1]; ++i) {
    start = std::max(start, b.lo[fanin_node_[i]] + b.fanin_delay[i]);
  }
  for (NodeId p : extra_in_[v]) {
    start = std::max(start, b.lo[p.value] + b.delay[p.value]);
  }
  return start;
}

int TimingCache::compute_hi(NodeId n, const Band& b) const {
  const std::size_t v = n.value;
  const int delay = b.delay[v];
  int latest = latency_ - delay;
  for (std::uint32_t i = fanout_off_[v]; i < fanout_off_[v + 1]; ++i) {
    latest = std::min(latest, b.hi[fanout_node_[i]] - delay);
  }
  for (NodeId s : extra_out_[v]) {
    latest = std::min(latest, b.hi[s.value] - delay);
  }
  return latest;
}

void TimingCache::note_changed(NodeId n) {
  if (!changed_mark_[n.value]) {
    changed_mark_[n.value] = true;
    changed_.push_back(n);
  }
}

// Monotone worklist: lo values only rise, so recomputing a node from its
// current predecessors and re-queueing its successors whenever the value
// moved converges to the unique fixed point in any pop order.  The heap
// pops in topological position so, absent extra edges that run against
// the stored order, each node is recomputed at most once.  heap_/queued_
// are member scratch (empty / all-zero between calls) — one pin used to
// cost two fresh capacity-sized vectors.  Both bands run through this
// same code; only the primary (scheduler) band decides feasibility, as
// its windows are contained in the optimistic ones and go empty first.
void TimingCache::propagate_lo(const std::vector<NodeId>& seeds,
                               const Band& b) {
  const auto push = [&](std::uint32_t v) {
    const int p = pos_[v];
    if (p >= 0 && !queued_[v]) {
      queued_[v] = 1;
      heap_.push_back(p);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<int>());
    }
  };
  for (NodeId s : seeds) push(s.value);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<int>());
    const NodeId n = topo_[static_cast<std::size_t>(heap_.back())];
    heap_.pop_back();
    const std::size_t v = n.value;
    queued_[v] = 0;
    ++update_work_;
    const int nl = compute_lo(n, b);
    if (pinned_[v] >= 0) {
      // A pinned window never moves; it can only become untenable when an
      // extra edge pushed a predecessor past it.
      if (b.primary && nl > pinned_[v]) feasible_ = false;
      continue;
    }
    if (nl <= b.lo[v]) continue;
    b.lo[v] = nl;
    if (b.primary && nl > b.hi[v]) feasible_ = false;
    note_changed(n);
    for (std::uint32_t i = fanout_off_[v]; i < fanout_off_[v + 1]; ++i) {
      push(fanout_node_[i]);
    }
    for (NodeId s : extra_out_[v]) push(s.value);
  }
}

void TimingCache::propagate_hi(const std::vector<NodeId>& seeds,
                               const Band& b) {
  // Max-heap on topo position: reverse topological pop order.
  const auto push = [&](std::uint32_t v) {
    const int p = pos_[v];
    if (p >= 0 && !queued_[v]) {
      queued_[v] = 1;
      heap_.push_back(p);
      std::push_heap(heap_.begin(), heap_.end());
    }
  };
  for (NodeId s : seeds) push(s.value);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    const NodeId n = topo_[static_cast<std::size_t>(heap_.back())];
    heap_.pop_back();
    const std::size_t v = n.value;
    queued_[v] = 0;
    ++update_work_;
    const int nh = compute_hi(n, b);
    if (pinned_[v] >= 0) {
      if (b.primary && nh < pinned_[v]) feasible_ = false;
      continue;
    }
    if (nh >= b.hi[v]) continue;
    b.hi[v] = nh;
    if (b.primary && nh < b.lo[v]) feasible_ = false;
    note_changed(n);
    for (std::uint32_t i = fanin_off_[v]; i < fanin_off_[v + 1]; ++i) {
      push(fanin_node_[i]);
    }
    for (NodeId p : extra_in_[v]) push(p.value);
  }
}

// Seeds and runs the (up to) two cone re-relaxations one pin triggers in
// one band.  The optimistic band's cones can be strictly larger than the
// scheduler band's — pinning at a node's current lo still *raises* its
// lo_min whenever the interval below it was non-degenerate — so each
// band tests against its own previous window.
void TimingCache::seed_pin_cones(NodeId n, int step, int old_lo, int old_hi,
                                 const Band& b) {
  const std::size_t v = n.value;
  if (step > old_lo) {
    seeds_.clear();
    for (std::uint32_t i = fanout_off_[v]; i < fanout_off_[v + 1]; ++i) {
      seeds_.push_back(NodeId{fanout_node_[i]});
    }
    for (NodeId s : extra_out_[v]) seeds_.push_back(s);
    propagate_lo(seeds_, b);
  }
  if (step < old_hi) {
    seeds_.clear();
    for (std::uint32_t i = fanin_off_[v]; i < fanin_off_[v + 1]; ++i) {
      seeds_.push_back(NodeId{fanin_node_[i]});
    }
    for (NodeId p : extra_in_[v]) seeds_.push_back(p);
    propagate_hi(seeds_, b);
  }
}

void TimingCache::pin(NodeId n, int step) {
  if (pos_[n.value] < 0) throw std::out_of_range("TimingCache::pin: dead node");
  if (pinned_[n.value] >= 0) {
    throw std::logic_error("TimingCache::pin: node '" + g_->node(n).name +
                           "' already pinned");
  }
  if (step < lo_[n.value] || step > hi_[n.value]) {
    throw std::logic_error("TimingCache::pin: step " + std::to_string(step) +
                           " outside window [" + std::to_string(lo_[n.value]) +
                           ", " + std::to_string(hi_[n.value]) + "] of '" +
                           g_->node(n).name + "'");
  }
  // Clear only the marks set by the previous call, not the whole bitmap.
  for (NodeId c : changed_) changed_mark_[c.value] = false;
  changed_.clear();
#if LWM_OBS_ENABLED
  const std::uint64_t work_before = update_work_;
#endif

  const std::size_t v = n.value;
  const int old_lo = lo_[v];
  const int old_hi = hi_[v];
  pinned_[v] = step;
  lo_[v] = step;
  hi_[v] = step;
  // The consumer contract: the pinned node is always reported, even when
  // its window was already the single step (its pinned state changed).
  note_changed(n);
  seed_pin_cones(n, step, old_lo, old_hi, primary_band());

  if (bounded_) {
    const int old_lo_min = lo_min_[v];
    const int old_hi_min = hi_min_[v];
    lo_min_[v] = step;
    hi_min_[v] = step;
    seed_pin_cones(n, step, old_lo_min, old_hi_min, min_band());
  }
#if LWM_OBS_ENABLED
  LWM_COUNT("cdfg/timing_pushes", update_work_ - work_before);
  LWM_HIST("cdfg/timing_cone", changed_.size());
#endif
}

void TimingCache::union_descendants(NodeId src, NodeId dst) {
  // New descendants flowing into src: dst itself plus dst's row.  Walk up
  // src's ancestors, stopping wherever the row is already a superset.
  std::vector<std::uint64_t> add(desc_.begin() + static_cast<std::ptrdiff_t>(row(dst.value)),
                                 desc_.begin() + static_cast<std::ptrdiff_t>(row(dst.value) + words_));
  add[dst.value / 64] |= bit_mask(dst.value);

  std::vector<NodeId> stack{src};
  while (!stack.empty()) {
    const NodeId a = stack.back();
    stack.pop_back();
    std::uint64_t* mine = desc_.data() + row(a.value);
    bool grew = false;
    for (std::size_t w = 0; w < words_; ++w) {
      const std::uint64_t next = mine[w] | add[w];
      if (next != mine[w]) {
        mine[w] = next;
        grew = true;
      }
    }
    if (!grew) continue;
    const std::size_t v = a.value;
    for (std::uint32_t i = fanin_off_[v]; i < fanin_off_[v + 1]; ++i) {
      stack.push_back(NodeId{fanin_node_[i]});
    }
    for (NodeId p : extra_in_[v]) stack.push_back(p);
  }
}

void TimingCache::add_extra_edge(NodeId src, NodeId dst) {
  if (pos_[src.value] < 0 || pos_[dst.value] < 0) {
    throw std::out_of_range("TimingCache::add_extra_edge: dead endpoint");
  }
  if (src == dst || (with_reach_ && reaches(dst, src))) {
    throw std::logic_error("TimingCache::add_extra_edge: edge '" +
                           g_->node(src).name + "' -> '" + g_->node(dst).name +
                           "' would close a cycle");
  }
  extra_out_[src.value].push_back(dst);
  extra_in_[dst.value].push_back(src);
  if (with_reach_) union_descendants(src, dst);

  for (NodeId c : changed_) changed_mark_[c.value] = false;
  changed_.clear();
#if LWM_OBS_ENABLED
  const std::uint64_t work_before = update_work_;
#endif
  seeds_.assign(1, dst);
  propagate_lo(seeds_, primary_band());
  seeds_.assign(1, src);
  propagate_hi(seeds_, primary_band());
  if (bounded_) {
    seeds_.assign(1, dst);
    propagate_lo(seeds_, min_band());
    seeds_.assign(1, src);
    propagate_hi(seeds_, min_band());
  }
#if LWM_OBS_ENABLED
  LWM_COUNT("cdfg/timing_pushes", update_work_ - work_before);
  LWM_HIST("cdfg/timing_cone", changed_.size());
#endif
}

bool TimingCache::reaches(NodeId src, NodeId dst) const {
  if (!with_reach_) {
    throw std::logic_error(
        "TimingCache::reaches: constructed without reachability");
  }
  if (pos_[src.value] < 0 || pos_[dst.value] < 0) return false;
  if (src == dst) return true;
  return (desc_[row(src.value) + dst.value / 64] & bit_mask(dst.value)) != 0;
}

}  // namespace lwm::cdfg
