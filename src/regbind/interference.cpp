#include "regbind/interference.h"

namespace lwm::regbind {

InterferenceGraph build_interference_graph(
    const std::vector<Lifetime>& lifetimes) {
  InterferenceGraph ig;
  ig.graph = color::UGraph(static_cast<int>(lifetimes.size()));
  ig.producer.reserve(lifetimes.size());
  for (const Lifetime& lt : lifetimes) ig.producer.push_back(lt.producer);
  for (std::size_t i = 0; i < lifetimes.size(); ++i) {
    for (std::size_t j = i + 1; j < lifetimes.size(); ++j) {
      if (lifetimes[i].overlaps(lifetimes[j])) {
        ig.graph.add_edge(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return ig;
}

Binding binding_from_coloring(const InterferenceGraph& ig,
                              const color::Coloring& coloring) {
  Binding b;
  b.register_count = coloring.colors_used;
  for (std::size_t i = 0; i < ig.producer.size(); ++i) {
    b.reg_of[ig.producer[i]] = coloring.color[i];
  }
  return b;
}

}  // namespace lwm::regbind
