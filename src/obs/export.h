// export.h — serializers for the obs registry: human summary, JSON
// registry dump (merged into every bench's `--json` artifact), and a
// Chrome trace_event file loadable in chrome://tracing or Perfetto.
//
// Only declared when LWM_OBS_ENABLED; including this header in an
// LWM_OBS=OFF build is harmless and contributes nothing to the binary.
#pragma once

#include "obs/obs.h"

#if LWM_OBS_ENABLED

#include <iosfwd>
#include <string>
#include <vector>

namespace lwm::obs {

/// Sorted plain-text dump of counters, histograms, and span aggregates.
[[nodiscard]] std::string summary_text();

/// One JSON object: {"counters":{...},"histograms":{...},"spans":{...}}.
/// Histograms report count/sum/mean/max plus the non-empty log2 buckets;
/// spans report count and total milliseconds.
[[nodiscard]] std::string registry_json();

/// Serializes `events` in Chrome trace_event JSON object format:
/// complete ("X") events per thread plus flow arrows ("s"/"f") linking a
/// span to a parent recorded on a different thread (a task whose parent
/// span was open where it was submitted).  Deterministic for a fixed
/// event list — the exporter golden test locks this format.
void write_trace_events(std::ostream& os, const std::vector<TraceEvent>& events);

/// Snapshots the live registry and writes it via write_trace_events.
/// Returns false (with a warning on stderr) when the file cannot be
/// opened.
bool write_chrome_trace(const std::string& path);

}  // namespace lwm::obs

#endif  // LWM_OBS_ENABLED
