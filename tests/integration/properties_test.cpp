// Parameterized property sweeps over randomized graphs: the invariants
// that must hold for every design, not just the hand-built fixtures.
#include <gtest/gtest.h>

#include "cdfg/analysis.h"
#include "cdfg/serialize.h"
#include "cdfg/validate.h"
#include "dfglib/synth.h"
#include "sched/enumerate.h"
#include "sched/force_directed.h"
#include "sched/list_sched.h"
#include "tmatch/cover.h"
#include "vliw/vliw_sched.h"
#include "cdfg/normalize.h"
#include "hls/datapath.h"
#include "regbind/interference.h"
#include "wm/attack.h"
#include "wm/domain.h"
#include "wm/pc.h"
#include "wm/sched_constraints.h"

namespace lwm {
namespace {

using cdfg::EdgeFilter;
using cdfg::Graph;
using cdfg::NodeId;

crypto::Signature alice() { return {"alice", "alice-design-key-2001"}; }

class RandomDagProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph make() const {
    return dfglib::make_layered_dag("p" + std::to_string(GetParam()),
                                    120 + static_cast<int>(GetParam() % 80), 6,
                                    {}, GetParam());
  }
};

TEST_P(RandomDagProperties, TimingInvariants) {
  const Graph g = make();
  const cdfg::TimingInfo t = cdfg::compute_timing(g);
  for (const NodeId n : g.node_ids()) {
    ASSERT_LE(t.asap[n.value], t.alap[n.value]) << g.node(n).name;
    ASSERT_GE(t.asap[n.value], 0);
    ASSERT_LE(t.laxity(n), t.critical_path);
    ASSERT_GE(t.laxity(n), g.node(n).delay)
        << "every node lies on a path at least as long as itself";
  }
}

TEST_P(RandomDagProperties, SchedulersProduceVerifiableSchedules) {
  const Graph g = make();
  const sched::Schedule list = sched::list_schedule(g);
  EXPECT_TRUE(sched::verify_schedule(g, list).ok);
  EXPECT_EQ(list.length(g), cdfg::critical_path_length(g))
      << "unlimited list scheduling is ASAP";

  sched::ListScheduleOptions constrained;
  constrained.resources = sched::ResourceSet::vliw4();
  const sched::Schedule rc = sched::list_schedule(g, constrained);
  EXPECT_TRUE(sched::verify_schedule(g, rc, EdgeFilter::all(),
                                     constrained.resources)
                  .ok);
  EXPECT_GE(rc.length(g), list.length(g));
}

TEST_P(RandomDagProperties, SerializationRoundTrip) {
  const Graph g = make();
  const Graph h = cdfg::from_text(cdfg::to_text(g));
  EXPECT_EQ(cdfg::to_text(h), cdfg::to_text(g));
  EXPECT_EQ(cdfg::critical_path_length(h), cdfg::critical_path_length(g));
}

TEST_P(RandomDagProperties, VliwRespectsDependences) {
  const Graph g = make();
  const vliw::VliwResult r = vliw::vliw_schedule(g, vliw::Machine::paper_machine());
  for (const cdfg::EdgeId e : g.edge_ids()) {
    const cdfg::Edge& ed = g.edge(e);
    if (!cdfg::is_executable(g.node(ed.src).kind) ||
        !cdfg::is_executable(g.node(ed.dst).kind)) {
      continue;
    }
    ASSERT_LT(r.schedule.start_of(ed.src), r.schedule.start_of(ed.dst) + 1);
  }
  // Cycles bounded below by ops / issue width.
  EXPECT_GE(r.cycles, static_cast<int>(g.operation_count()) / 4);
}

TEST_P(RandomDagProperties, DomainSelectionIsStablePerSignature) {
  const Graph g = make();
  crypto::Bitstream roots = alice().stream("roots");
  const NodeId root = wm::pick_root(g, roots);
  wm::DomainKey key;
  key.tau = 4;
  const wm::Domain a = wm::select_domain(g, root, alice(), key);
  const wm::Domain b = wm::select_domain(g, root, alice(), key);
  EXPECT_EQ(a.selected, b.selected);
  // Selection is always inside the cone and includes the root.
  EXPECT_FALSE(a.selected.empty());
}

TEST_P(RandomDagProperties, EmbeddedWatermarkKeepsGraphSchedulable) {
  Graph g = make();
  wm::SchedWmOptions opts;
  opts.domain.tau = 5;
  opts.k = 2;
  opts.epsilon = 0.3;
  const auto marks = wm::embed_local_watermarks(g, alice(), 2, opts, 200);
  // Whether or not a watermark fits this dag, the graph must stay valid.
  EXPECT_TRUE(cdfg::validate(g).empty());
  const sched::Schedule s = sched::list_schedule(g);
  EXPECT_TRUE(sched::verify_schedule(g, s, EdgeFilter::all()).ok);
  for (const auto& m : marks) {
    for (const auto& c : m.constraints) {
      EXPECT_LE(s.start_of(c.src) + g.node(c.src).delay, s.start_of(c.dst));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

class DspDesignProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph make() const {
    const int cp = 8 + static_cast<int>(GetParam() % 10);
    const int ops = cp * 4;
    return dfglib::make_dsp_design("dsp" + std::to_string(GetParam()), cp, ops,
                                   GetParam());
  }
};

TEST_P(DspDesignProperties, CoverIsExactPartition) {
  const Graph g = make();
  const tmatch::TemplateLibrary lib = tmatch::TemplateLibrary::standard();
  const tmatch::Cover cover = tmatch::greedy_cover(g, lib);
  std::size_t covered = 0;
  for (const auto& m : cover.matches) covered += m.nodes.size();
  EXPECT_EQ(covered, g.operation_count());
}

TEST_P(DspDesignProperties, AllocationMeetsBudget) {
  const Graph g = make();
  const tmatch::TemplateLibrary lib = tmatch::TemplateLibrary::standard();
  const tmatch::MappedDesign d =
      tmatch::build_mapped_design(g, tmatch::greedy_cover(g, lib));
  const int cp = cdfg::critical_path_length(d.macro);
  for (const int factor : {1, 2, 3}) {
    const tmatch::ModuleAllocation alloc =
        tmatch::allocate_modules(d, lib, factor * cp);
    EXPECT_LE(alloc.latency, factor * cp);
    EXPECT_GT(alloc.total(), 0);
  }
}

TEST_P(DspDesignProperties, FdsNeverExceedsListPeakAtSameLatency) {
  const Graph g = make();
  const int cp = cdfg::critical_path_length(g);
  const sched::Schedule fds =
      sched::force_directed_schedule(g, {.latency = cp + 4});
  EXPECT_TRUE(sched::verify_schedule(g, fds, EdgeFilter::all(),
                                     sched::ResourceSet::unlimited(), cp + 4)
                  .ok);
}

TEST_P(DspDesignProperties, PsiRatioIsAProbability) {
  const Graph g = make();
  // Pick two taps with overlapping windows if available.
  const cdfg::TimingInfo t =
      cdfg::compute_timing(g, -1, EdgeFilter::specification());
  NodeId a, b;
  for (const NodeId n : g.node_ids()) {
    if (!cdfg::is_executable(g.node(n).kind)) continue;
    if (t.slack(n) < 2) continue;
    if (!a.valid()) {
      a = n;
    } else if (!b.valid() && t.windows_overlap(a, n) && n != a &&
               !cdfg::reaches(g, a, n) && !cdfg::reaches(g, n, a)) {
      b = n;
    }
  }
  if (!a.valid() || !b.valid()) GTEST_SKIP() << "no slack pair in this design";
  const std::vector<NodeId> subset = {a, b};
  const sched::PsiCounts psi = sched::psi_counts(g, subset, a, b);
  ASSERT_GT(psi.psi_n, 0u);
  EXPECT_LE(psi.psi_w, psi.psi_n);
  EXPECT_GT(psi.psi_w, 0u);
}

TEST_P(DspDesignProperties, RegisterBindingInvariants) {
  const Graph g = make();
  const sched::Schedule s = sched::list_schedule(g);
  const auto lifetimes = regbind::compute_lifetimes(g, s);
  const auto binding = regbind::left_edge_binding(lifetimes);
  ASSERT_TRUE(binding.has_value());
  // LEFT-EDGE is optimal: register count equals the clique number of the
  // interval interference graph, which equals max-live.
  EXPECT_EQ(binding->register_count, regbind::max_live(lifetimes));
  EXPECT_TRUE(regbind::verify_binding(lifetimes, *binding).ok);
  // DSATUR on the interference graph can never beat it.
  const auto ig = regbind::build_interference_graph(lifetimes);
  const color::Coloring c = color::dsatur_coloring(ig.graph);
  EXPECT_GE(c.colors_used, binding->register_count);
}

TEST_P(DspDesignProperties, DatapathSynthesisInvariants) {
  const Graph g = make();
  const hls::Datapath dp = hls::synthesize_datapath(g);
  EXPECT_LE(dp.latency, cdfg::critical_path_length(g));
  EXPECT_GT(dp.total_units(), 0);
  EXPECT_EQ(dp.registers, dp.binding.register_count);
  const auto lifetimes = regbind::compute_lifetimes(g, dp.schedule);
  EXPECT_TRUE(regbind::verify_binding(lifetimes, dp.binding).ok);
}

TEST_P(DspDesignProperties, DecoyInsertionThenNormalizationIsIdentity) {
  // Structural property behind bench_robustness: insert transparent
  // decoys, normalize, and the graph must be isomorphic to the original
  // in every quantity the detector consumes.
  Graph g = make();
  sched::Schedule s = sched::list_schedule(
      g, {.resources = sched::ResourceSet::unlimited(),
          .filter = cdfg::EdgeFilter::specification()});
  const std::size_t ops_before = g.operation_count();
  const int cp_before = cdfg::critical_path_length(g);

  const auto decoys = wm::insert_decoys(g, s, 10, GetParam());
  EXPECT_EQ(g.operation_count(), ops_before + decoys.size());
  const int removed = cdfg::normalize_unit_ops(g);
  EXPECT_EQ(removed, static_cast<int>(decoys.size()));
  EXPECT_EQ(g.operation_count(), ops_before);
  EXPECT_EQ(cdfg::critical_path_length(g), cp_before);
  EXPECT_TRUE(cdfg::validate(g).empty());
}

TEST_P(DspDesignProperties, ExactSchedulePcBoundsWindowModel) {
  // On localities small enough to enumerate, the exact P_c and the
  // window model must both be probabilities (<= 1, i.e. log10 <= 0).
  Graph g = make();
  const crypto::Signature sig("prop", "prop-key");
  wm::SchedWmOptions opts;
  opts.domain.tau = 4;
  opts.k = 2;
  opts.epsilon = 0.3;
  const auto marks = wm::embed_local_watermarks(g, sig, 1, opts, 300);
  if (marks.empty()) GTEST_SKIP() << "no locality accepted a mark";
  g.strip_temporal_edges();
  const wm::PcEstimate exact = wm::sched_pc_exact(g, marks.front());
  const wm::PcEstimate window = wm::sched_pc_window_model(g, marks);
  EXPECT_LE(exact.log10_pc, 0.0);
  EXPECT_LE(window.log10_pc, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DspDesignProperties,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u, 106u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace lwm
