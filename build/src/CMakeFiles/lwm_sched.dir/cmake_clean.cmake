file(REMOVE_RECURSE
  "CMakeFiles/lwm_sched.dir/sched/bnb.cpp.o"
  "CMakeFiles/lwm_sched.dir/sched/bnb.cpp.o.d"
  "CMakeFiles/lwm_sched.dir/sched/enumerate.cpp.o"
  "CMakeFiles/lwm_sched.dir/sched/enumerate.cpp.o.d"
  "CMakeFiles/lwm_sched.dir/sched/force_directed.cpp.o"
  "CMakeFiles/lwm_sched.dir/sched/force_directed.cpp.o.d"
  "CMakeFiles/lwm_sched.dir/sched/list_sched.cpp.o"
  "CMakeFiles/lwm_sched.dir/sched/list_sched.cpp.o.d"
  "CMakeFiles/lwm_sched.dir/sched/resources.cpp.o"
  "CMakeFiles/lwm_sched.dir/sched/resources.cpp.o.d"
  "CMakeFiles/lwm_sched.dir/sched/schedule.cpp.o"
  "CMakeFiles/lwm_sched.dir/sched/schedule.cpp.o.d"
  "CMakeFiles/lwm_sched.dir/sched/schedule_io.cpp.o"
  "CMakeFiles/lwm_sched.dir/sched/schedule_io.cpp.o.d"
  "liblwm_sched.a"
  "liblwm_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwm_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
