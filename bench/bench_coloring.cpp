// bench_coloring — the paper's §III pedagogical instantiation, measured:
// local watermarks in graph-coloring solutions (ghost edges in random
// subgraphs, the Qu–Potkonjak encoding), both on random graphs and on a
// real register-interference instance.
//
// The known tradeoff this bench demonstrates: each ghost edge carries
// only log10(k/(k-1)) decades of proof (a random k-coloring already
// separates most pairs), so coloring watermarks need *many* edges —
// wholly unlike the scheduling protocol, where a single before-order
// edge carries ~0.3-0.5 decades.
#include <cstdio>
#include <vector>

#include "bench_io.h"
#include "dfglib/synth.h"
#include "regbind/interference.h"
#include "sched/list_sched.h"
#include "table.h"
#include "wm/color_constraints.h"

using namespace lwm;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv, "BENCH_coloring.json");
  const bench::Stopwatch wall;
  std::printf("== Graph-coloring local watermarks (paper SIII example) ==\n\n");

  const crypto::Signature author("author", "coloring-bench-key");

  // --- random graphs: proof vs color overhead ---------------------------------
  std::printf("random graphs (n=120):\n");
  bench::Table t({"density", "base colors", "marks", "ghost edges",
                  "wm colors", "log10 Pc", "detected"});
  const std::vector<double> densities =
      args.smoke ? std::vector<double>{0.1} : std::vector<double>{0.05, 0.1, 0.2, 0.4};
  for (const double density : densities) {
    const color::UGraph g = color::UGraph::random(120, density, 6001);
    const color::Coloring base = color::dsatur_coloring(g);

    wm::ColorWmOptions opts;
    opts.radius = 2;
    opts.pairs = 8;
    opts.min_pairs = 3;
    const auto marks = wm::plan_color_watermarks(g, author, 4, opts);
    int edges = 0;
    for (const auto& m : marks) edges += static_cast<int>(m.ghost_edges.size());
    const color::Coloring marked =
        color::dsatur_coloring(g, wm::to_color_constraints(marks));
    int detected = 0;
    for (const auto& m : marks) {
      detected += wm::detect_color_watermark(g, marked, author, m).detected();
    }
    t.add_row({bench::fmt("%.2f", density), bench::fmt_int(base.colors_used),
               bench::fmt_int(static_cast<long long>(marks.size())),
               bench::fmt_int(edges), bench::fmt_int(marked.colors_used),
               bench::fmt("%.2f", wm::log10_color_pc(marked, marks)),
               bench::fmt_int(detected) + "/" +
                   bench::fmt_int(static_cast<long long>(marks.size()))});
  }
  t.print();

  // --- a real instance: register interference ---------------------------------
  std::printf("\nregister-interference instance (coloring = register "
              "allocation):\n");
  const cdfg::Graph design =
      dfglib::make_dsp_design("color_core", 16, args.smoke ? 80 : 240, 6002);
  const sched::Schedule s = sched::list_schedule(design);
  const auto lifetimes = regbind::compute_lifetimes(design, s);
  const auto ig = regbind::build_interference_graph(lifetimes);
  const color::Coloring base = color::dsatur_coloring(ig.graph);

  wm::ColorWmOptions opts;
  opts.radius = 2;
  opts.pairs = 6;
  opts.min_pairs = 2;
  const auto marks = wm::plan_color_watermarks(ig.graph, author, 4, opts);
  const color::Coloring marked =
      color::dsatur_coloring(ig.graph, wm::to_color_constraints(marks));
  int detected = 0;
  for (const auto& m : marks) {
    detected += wm::detect_color_watermark(ig.graph, marked, author, m).detected();
  }
  std::printf("variables %d, interference edges %zu; registers %d -> %d "
              "with %zu marks; log10 Pc %.2f; detected %d/%zu\n",
              ig.graph.vertex_count(), ig.graph.edge_count(), base.colors_used,
              marked.colors_used, marks.size(),
              wm::log10_color_pc(marked, marks), detected, marks.size());

  std::printf("\nshape checks:\n");
  std::printf("  * per-edge proof is weak (log10 (k-1)/k) but compounds over "
              "many ghost edges\n");
  std::printf("  * color/register overhead stays within a couple of colors\n");

  bench::JsonObject json;
  json.add("bench", std::string("coloring"));
  json.add("threads", args.threads);
  json.add("densities", static_cast<long long>(densities.size()));
  json.add("interference_vars", ig.graph.vertex_count());
  json.add("registers_base", base.colors_used);
  json.add("registers_marked", marked.colors_used);
  json.add("marks", static_cast<long long>(marks.size()));
  json.add("detected", detected);
  json.add("log10_pc", wm::log10_color_pc(marked, marks));
  json.add("wall_ms", wall.elapsed_ms());
  bench::attach_obs(json, args);
  return json.write(args.json_path) ? 0 : 1;
}
