// quickstart — the smallest end-to-end tour of the public API:
// build a CDFG, embed a local scheduling watermark keyed by your
// signature, synthesize, strip the constraints, and detect the mark in
// the shipped artifact.
//
//   $ ./quickstart
#include <cstdio>

#include "cdfg/builder.h"
#include "cdfg/dot.h"
#include "dfglib/iir4.h"
#include "sched/list_sched.h"
#include "wm/detector.h"
#include "wm/sched_constraints.h"

int main() {
  using namespace lwm;

  // 1. Your design: here, the paper's 4th-order parallel IIR filter.
  cdfg::Graph design = dfglib::iir4_parallel();
  std::printf("design '%s': %zu operations, critical path %d steps\n",
              design.name().c_str(), design.operation_count(),
              cdfg::critical_path_length(design));

  // 2. Your secret signature.  Everything the watermark does is a pure
  //    function of this key and the design's structure.
  const crypto::Signature me("quickstart-author", "my-secret-signature-42");

  // 3. Embed one local watermark rooted at the output adder.
  wm::SchedWmOptions opts;
  opts.domain.tau = 6;     // locality radius
  opts.k = 3;              // temporal edges to hide
  opts.epsilon = 0.3;      // stay away from the critical path
  opts.domain.keep_num = 2;  // carve probability 2/3
  opts.domain.keep_den = 3;
  auto mark = wm::embed_sched_watermark(design, design.find("A9"), me, opts);
  if (!mark) {
    std::printf("this locality cannot host a watermark; try another root\n");
    return 1;
  }
  std::printf("embedded %zu hidden temporal constraints:\n",
              mark->constraints.size());
  for (const auto& c : mark->constraints) {
    std::printf("  %s must finish before %s starts\n",
                design.node(c.src).name.c_str(),
                design.node(c.dst).name.c_str());
  }

  // Archive the detection record (graph-independent coordinates).
  const wm::SchedRecord record = wm::SchedRecord::from(*mark, design);

  // 4. Synthesize with any scheduler — it simply honors the extra edges.
  const sched::Schedule schedule = sched::list_schedule(design);

  // 5. Strip the constraints; the shipped design is structurally the
  //    original, but its schedule still satisfies the hidden edges.
  design.strip_temporal_edges();
  std::printf("schedule length: %d steps (critical path %d)\n",
              schedule.length(design), cdfg::critical_path_length(design));

  // 6. Detection: scan every candidate root with your signature.
  const wm::SchedDetectionReport report =
      wm::detect_sched_watermark(design, schedule, me, record);
  std::printf("detection: %s (%zu hit(s) over %d scanned roots)\n",
              report.detected() ? "WATERMARK FOUND" : "nothing",
              report.hits.size(), report.roots_scanned);

  // A stranger's signature finds nothing.
  const crypto::Signature stranger("someone-else", "another-key");
  const auto foreign =
      wm::detect_sched_watermark(design, schedule, stranger, record);
  std::printf("foreign signature: %s\n",
              foreign.detected() ? "false positive!" : "nothing (as expected)");
  return report.detected() && !foreign.detected() ? 0 : 1;
}
